//! Synthetic memory workloads.

use crate::request::{MemRequest, Op};
use divot_dsp::rng::DivotRng;
use serde::{Deserialize, Serialize};

/// Address-generation pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential with a fixed stride (streaming).
    Sequential {
        /// Words between consecutive accesses.
        stride: u64,
    },
    /// Uniformly random over the footprint.
    Random,
    /// Hammers a small set of rows (row-buffer friendly).
    RowHog {
        /// Number of distinct hot addresses.
        hot_addresses: u64,
    },
}

/// Workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// The address pattern.
    pub pattern: AccessPattern,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Probability of generating a request on any given cycle
    /// (arrival rate).
    pub intensity: f64,
    /// Address footprint (words).
    pub footprint: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            pattern: AccessPattern::Sequential { stride: 1 },
            read_fraction: 0.7,
            intensity: 0.05,
            footprint: 1 << 20,
        }
    }
}

/// A request generator.
#[derive(Debug, Clone)]
pub struct Workload {
    config: WorkloadConfig,
    rng: DivotRng,
    next_id: u64,
    cursor: u64,
}

impl Workload {
    /// Create a workload.
    ///
    /// # Panics
    ///
    /// Panics if fractions are out of range or the footprint is zero.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.read_fraction),
            "read_fraction must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&config.intensity),
            "intensity must be in [0,1]"
        );
        assert!(config.footprint > 0, "footprint must be non-zero");
        Self {
            config,
            rng: DivotRng::derive(seed, 0x30AD),
            next_id: 0,
            cursor: 0,
        }
    }

    /// Total requests generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Possibly generate a request this cycle.
    pub fn maybe_generate(&mut self, cycle: u64) -> Option<MemRequest> {
        if !self.rng.bernoulli(self.config.intensity) {
            return None;
        }
        let addr = match self.config.pattern {
            AccessPattern::Sequential { stride } => {
                let a = self.cursor;
                self.cursor = (self.cursor + stride) % self.config.footprint;
                a
            }
            AccessPattern::Random => {
                (self.rng.uniform() * self.config.footprint as f64) as u64
                    % self.config.footprint
            }
            AccessPattern::RowHog { hot_addresses } => {
                self.rng.index(hot_addresses.max(1) as usize) as u64 % self.config.footprint
            }
        };
        let op = if self.rng.bernoulli(self.config.read_fraction) {
            Op::Read
        } else {
            Op::Write
        };
        let id = self.next_id;
        self.next_id += 1;
        Some(MemRequest {
            id,
            op,
            addr,
            data: id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            issue_cycle: cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_controls_rate() {
        let mut w = Workload::new(
            WorkloadConfig {
                intensity: 0.25,
                ..WorkloadConfig::default()
            },
            1,
        );
        let n = 40_000;
        let generated = (0..n).filter(|&c| w.maybe_generate(c).is_some()).count();
        let rate = generated as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
        assert_eq!(w.generated() as usize, generated);
    }

    #[test]
    fn sequential_addresses_stride() {
        let mut w = Workload::new(
            WorkloadConfig {
                pattern: AccessPattern::Sequential { stride: 4 },
                intensity: 1.0,
                ..WorkloadConfig::default()
            },
            2,
        );
        let a = w.maybe_generate(0).unwrap();
        let b = w.maybe_generate(1).unwrap();
        assert_eq!(b.addr, a.addr + 4);
        assert_eq!(b.id, a.id + 1);
    }

    #[test]
    fn footprint_wraps() {
        let mut w = Workload::new(
            WorkloadConfig {
                pattern: AccessPattern::Sequential { stride: 3 },
                intensity: 1.0,
                footprint: 7,
                ..WorkloadConfig::default()
            },
            3,
        );
        for c in 0..100 {
            let r = w.maybe_generate(c).unwrap();
            assert!(r.addr < 7);
        }
    }

    #[test]
    fn row_hog_uses_few_addresses() {
        let mut w = Workload::new(
            WorkloadConfig {
                pattern: AccessPattern::RowHog { hot_addresses: 4 },
                intensity: 1.0,
                ..WorkloadConfig::default()
            },
            4,
        );
        let mut seen = std::collections::HashSet::new();
        for c in 0..1000 {
            seen.insert(w.maybe_generate(c).unwrap().addr);
        }
        assert!(seen.len() <= 4);
    }

    #[test]
    fn read_fraction_respected() {
        let mut w = Workload::new(
            WorkloadConfig {
                read_fraction: 0.9,
                intensity: 1.0,
                ..WorkloadConfig::default()
            },
            5,
        );
        let reads = (0..10_000)
            .filter(|&c| w.maybe_generate(c).unwrap().op == Op::Read)
            .count();
        assert!((reads as f64 / 10_000.0 - 0.9).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "read_fraction must be in [0,1]")]
    fn rejects_bad_fraction() {
        let _ = Workload::new(
            WorkloadConfig {
                read_fraction: 1.5,
                ..WorkloadConfig::default()
            },
            0,
        );
    }
}
