//! The SDRAM module: banks, rows, timing state machines, backing store,
//! and the DIVOT column-access gate.
//!
//! The §III design adds the iTDR "aside the normal address decoding, sense
//! amplifier, and buffering logic"; at column access time, the column
//! address is **gated by the authentication result** so only the
//! authorized CPU and bus can read or write. [`DramModule::set_access_gate`]
//! is that gate; blocked accesses are counted and rejected.

use crate::command::DramCommand;
use crate::request::AddressMap;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// DRAM timing parameters, in controller clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Activate-to-column delay (tRCD).
    pub t_rcd: u64,
    /// Precharge time (tRP).
    pub t_rp: u64,
    /// Column access (CAS) latency.
    pub cas_latency: u64,
    /// Minimum row-open time before precharge (tRAS).
    pub t_ras: u64,
    /// Average refresh interval (tREFI).
    pub t_refi: u64,
    /// Refresh cycle time (tRFC).
    pub t_rfc: u64,
}

impl Default for DramTiming {
    fn default() -> Self {
        // DDR3-1600-class timings at an 800 MHz controller clock.
        Self {
            t_rcd: 11,
            t_rp: 11,
            cas_latency: 11,
            t_ras: 28,
            t_refi: 6240,
            t_rfc: 208,
        }
    }
}

/// The state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// No row open.
    Idle,
    /// A row is being opened; usable at `ready_at`.
    Opening {
        /// The row being opened.
        row: u64,
        /// First cycle column accesses are allowed.
        ready_at: u64,
        /// Cycle the ACTIVATE was issued (for tRAS accounting).
        opened_at: u64,
    },
    /// Precharge in progress; idle at `ready_at`.
    Closing {
        /// First cycle the bank is idle again.
        ready_at: u64,
    },
}

/// Why a command was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandError {
    /// The bank is not in a state that allows this command yet.
    BankBusy,
    /// Column access to a bank with no (or the wrong) open row.
    RowMismatch,
    /// A refresh is in progress.
    RefreshInProgress,
    /// Refresh requires all banks precharged.
    NotAllPrecharged,
    /// tRAS not yet satisfied for precharge.
    RowOpenTooShort,
    /// The DIVOT gate rejected the column access (authentication failed
    /// or tamper detected).
    AccessBlocked,
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CommandError::BankBusy => "bank busy",
            CommandError::RowMismatch => "row mismatch",
            CommandError::RefreshInProgress => "refresh in progress",
            CommandError::NotAllPrecharged => "refresh requires all banks precharged",
            CommandError::RowOpenTooShort => "tRAS not satisfied",
            CommandError::AccessBlocked => "access blocked by DIVOT gate",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CommandError {}

/// Completion notice for an accepted column access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnAccess {
    /// Data read (reads) or written (writes).
    pub data: u64,
    /// Cycle the data appears on the bus.
    pub ready_at: u64,
}

/// Access statistics of the module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleStats {
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Activates performed.
    pub activates: u64,
    /// Refreshes performed.
    pub refreshes: u64,
    /// Column accesses rejected by the DIVOT gate.
    pub blocked: u64,
}

/// The SDRAM module model.
#[derive(Debug, Clone)]
pub struct DramModule {
    timing: DramTiming,
    map: AddressMap,
    banks: Vec<BankState>,
    store: HashMap<(usize, u64, u64), u64>,
    refresh_until: u64,
    gate_blocked: bool,
    stats: ModuleStats,
}

impl DramModule {
    /// Create an idle module.
    pub fn new(timing: DramTiming, map: AddressMap) -> Self {
        Self {
            timing,
            map,
            banks: vec![BankState::Idle; map.banks()],
            store: HashMap::new(),
            refresh_until: 0,
            gate_blocked: false,
            stats: ModuleStats::default(),
        }
    }

    /// The timing parameters.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// Effective state of bank `b` at cycle `now` (transient states that
    /// have completed are reported as their successor).
    pub fn bank_state(&self, b: usize, now: u64) -> BankState {
        match self.banks[b] {
            BankState::Closing { ready_at } if now >= ready_at => BankState::Idle,
            s => s,
        }
    }

    /// The open row of bank `b` at `now`, if column-accessible.
    pub fn open_row(&self, b: usize, now: u64) -> Option<u64> {
        match self.banks[b] {
            BankState::Opening { row, ready_at, .. } if now >= ready_at => Some(row),
            _ => None,
        }
    }

    /// Set the DIVOT column-access gate: `true` blocks all reads/writes.
    pub fn set_access_gate(&mut self, blocked: bool) {
        self.gate_blocked = blocked;
    }

    /// Whether the gate is currently blocking.
    pub fn gate_blocked(&self) -> bool {
        self.gate_blocked
    }

    /// Access statistics.
    pub fn stats(&self) -> &ModuleStats {
        &self.stats
    }

    /// Whether a refresh is in progress at `now`.
    pub fn refreshing(&self, now: u64) -> bool {
        now < self.refresh_until
    }

    /// Issue a command at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns a [`CommandError`] if the command violates bank state,
    /// timing, or is blocked by the DIVOT gate. Rejected commands have no
    /// effect (other than counting gate blocks).
    pub fn issue(
        &mut self,
        cmd: DramCommand,
        now: u64,
    ) -> Result<Option<ColumnAccess>, CommandError> {
        if self.refreshing(now) {
            return Err(CommandError::RefreshInProgress);
        }
        match cmd {
            DramCommand::Activate { bank, row } => {
                match self.bank_state(bank, now) {
                    BankState::Idle => {
                        self.banks[bank] = BankState::Opening {
                            row,
                            ready_at: now + self.timing.t_rcd,
                            opened_at: now,
                        };
                        self.stats.activates += 1;
                        Ok(None)
                    }
                    _ => Err(CommandError::BankBusy),
                }
            }
            DramCommand::Precharge { bank } => match self.bank_state(bank, now) {
                BankState::Opening { opened_at, .. } => {
                    if now < opened_at + self.timing.t_ras {
                        return Err(CommandError::RowOpenTooShort);
                    }
                    self.banks[bank] = BankState::Closing {
                        ready_at: now + self.timing.t_rp,
                    };
                    Ok(None)
                }
                BankState::Idle => Ok(None), // precharge of idle bank is a no-op
                BankState::Closing { .. } => Err(CommandError::BankBusy),
            },
            DramCommand::Read { bank, col } => {
                let row = self
                    .open_row(bank, now)
                    .ok_or(CommandError::RowMismatch)?;
                if self.gate_blocked {
                    self.stats.blocked += 1;
                    return Err(CommandError::AccessBlocked);
                }
                let data = self
                    .store
                    .get(&(bank, row, col))
                    .copied()
                    .unwrap_or(0);
                self.stats.reads += 1;
                Ok(Some(ColumnAccess {
                    data,
                    ready_at: now + self.timing.cas_latency,
                }))
            }
            DramCommand::Write { bank, col, data } => {
                let row = self
                    .open_row(bank, now)
                    .ok_or(CommandError::RowMismatch)?;
                if self.gate_blocked {
                    self.stats.blocked += 1;
                    return Err(CommandError::AccessBlocked);
                }
                self.store.insert((bank, row, col), data);
                self.stats.writes += 1;
                Ok(Some(ColumnAccess {
                    data,
                    ready_at: now + self.timing.cas_latency,
                }))
            }
            DramCommand::Refresh => {
                let all_idle = (0..self.banks.len())
                    .all(|b| matches!(self.bank_state(b, now), BankState::Idle));
                if !all_idle {
                    return Err(CommandError::NotAllPrecharged);
                }
                self.refresh_until = now + self.timing.t_rfc;
                self.stats.refreshes += 1;
                Ok(None)
            }
        }
    }

    /// Direct backing-store peek (testing/debug; not a bus access).
    pub fn peek(&self, addr: u64) -> Option<u64> {
        let d = self.map.decode(addr);
        self.store.get(&(d.bank, d.row, d.col)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> DramModule {
        DramModule::new(DramTiming::default(), AddressMap::default())
    }

    #[test]
    fn activate_then_read_round_trip() {
        let mut m = module();
        m.issue(DramCommand::Activate { bank: 0, row: 5 }, 0).unwrap();
        // Before tRCD: column access rejected.
        assert_eq!(
            m.issue(DramCommand::Read { bank: 0, col: 3 }, 5),
            Err(CommandError::RowMismatch)
        );
        // After tRCD: write then read back.
        m.issue(
            DramCommand::Write {
                bank: 0,
                col: 3,
                data: 0xDEAD,
            },
            11,
        )
        .unwrap();
        let r = m
            .issue(DramCommand::Read { bank: 0, col: 3 }, 12)
            .unwrap()
            .unwrap();
        assert_eq!(r.data, 0xDEAD);
        assert_eq!(r.ready_at, 12 + 11);
    }

    #[test]
    fn unwritten_cells_read_zero() {
        let mut m = module();
        m.issue(DramCommand::Activate { bank: 1, row: 0 }, 0).unwrap();
        let r = m
            .issue(DramCommand::Read { bank: 1, col: 0 }, 20)
            .unwrap()
            .unwrap();
        assert_eq!(r.data, 0);
    }

    #[test]
    fn wrong_row_is_rejected() {
        let mut m = module();
        m.issue(DramCommand::Activate { bank: 0, row: 5 }, 0).unwrap();
        assert!(m.open_row(0, 11).is_some());
        // Activating again while open: busy.
        assert_eq!(
            m.issue(DramCommand::Activate { bank: 0, row: 6 }, 12),
            Err(CommandError::BankBusy)
        );
    }

    #[test]
    fn precharge_respects_tras() {
        let mut m = module();
        m.issue(DramCommand::Activate { bank: 0, row: 5 }, 0).unwrap();
        assert_eq!(
            m.issue(DramCommand::Precharge { bank: 0 }, 10),
            Err(CommandError::RowOpenTooShort)
        );
        m.issue(DramCommand::Precharge { bank: 0 }, 28).unwrap();
        // Bank is closing, then idle after tRP.
        assert_eq!(m.bank_state(0, 30), BankState::Closing { ready_at: 39 });
        assert_eq!(m.bank_state(0, 39), BankState::Idle);
    }

    #[test]
    fn refresh_requires_all_precharged_and_blocks() {
        let mut m = module();
        m.issue(DramCommand::Activate { bank: 0, row: 1 }, 0).unwrap();
        assert_eq!(
            m.issue(DramCommand::Refresh, 15),
            Err(CommandError::NotAllPrecharged)
        );
        m.issue(DramCommand::Precharge { bank: 0 }, 28).unwrap();
        m.issue(DramCommand::Refresh, 40).unwrap();
        assert!(m.refreshing(100));
        assert_eq!(
            m.issue(DramCommand::Activate { bank: 0, row: 1 }, 100),
            Err(CommandError::RefreshInProgress)
        );
        assert!(!m.refreshing(40 + 208));
    }

    #[test]
    fn divot_gate_blocks_column_access_only() {
        let mut m = module();
        m.issue(DramCommand::Activate { bank: 0, row: 5 }, 0).unwrap();
        m.set_access_gate(true);
        // Row operations still work (the gate is at column access time,
        // §III), but data never moves.
        assert_eq!(
            m.issue(DramCommand::Read { bank: 0, col: 1 }, 15),
            Err(CommandError::AccessBlocked)
        );
        assert_eq!(
            m.issue(
                DramCommand::Write {
                    bank: 0,
                    col: 1,
                    data: 7
                },
                16
            ),
            Err(CommandError::AccessBlocked)
        );
        assert_eq!(m.stats().blocked, 2);
        assert_eq!(m.stats().reads, 0);
        // Unblocking restores service.
        m.set_access_gate(false);
        assert!(m.issue(DramCommand::Read { bank: 0, col: 1 }, 17).is_ok());
    }

    #[test]
    fn peek_reflects_writes() {
        let mut m = module();
        let map = AddressMap::default();
        let addr = 123_456;
        let d = map.decode(addr);
        m.issue(
            DramCommand::Activate {
                bank: d.bank,
                row: d.row,
            },
            0,
        )
        .unwrap();
        m.issue(
            DramCommand::Write {
                bank: d.bank,
                col: d.col,
                data: 42,
            },
            11,
        )
        .unwrap();
        assert_eq!(m.peek(addr), Some(42));
        assert_eq!(m.peek(addr + 1), None);
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", CommandError::AccessBlocked).contains("DIVOT"));
    }
}
