//! Request queue and FR-FCFS command arbiter with refresh handling.
//!
//! The §III design places the iTDR "working together with reference queue,
//! arbiter, scheduler, refresh, and precharge logic" — this module is that
//! surrounding controller logic. The arbiter is first-ready, first-come
//! first-served (FR-FCFS, Rixner et al., cited by the paper): row hits are
//! served before older row misses, subject to bank timing and periodic
//! refresh.

use crate::command::DramCommand;
use crate::dram::{BankState, DramModule};
use crate::request::{AddressMap, MemRequest, Op};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Command-arbitration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbiterPolicy {
    /// First-ready, first-come first-served: row hits bypass older misses
    /// (the paper's cited Rixner et al. scheduler).
    FrFcfs,
    /// Strict first-come first-served: requests issue in arrival order.
    Fcfs,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Leave rows open after column accesses (bets on locality).
    OpenPage,
    /// Precharge a bank as soon as no queued request wants its open row
    /// (bets against locality; lowers miss latency).
    ClosedPage,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Maximum queued requests.
    pub queue_capacity: usize,
    /// Whether periodic refresh is generated.
    pub refresh_enabled: bool,
    /// Command arbitration policy.
    pub arbiter: ArbiterPolicy,
    /// Row-buffer management policy.
    pub page: PagePolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 32,
            refresh_enabled: true,
            arbiter: ArbiterPolicy::FrFcfs,
            page: PagePolicy::OpenPage,
        }
    }
}

/// Error returned when the request queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError;

impl std::fmt::Display for QueueFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("request queue is full")
    }
}

impl std::error::Error for QueueFullError {}

/// The scheduler's decision for this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Issue this command; if it is a column access, it serves the
    /// attached request.
    Issue(DramCommand, Option<MemRequest>),
    /// Nothing can usefully issue this cycle.
    Idle,
}

/// The FR-FCFS scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    queue: VecDeque<MemRequest>,
    map: AddressMap,
    config: SchedulerConfig,
    next_refresh_due: u64,
}

impl Scheduler {
    /// Create an empty scheduler.
    pub fn new(map: AddressMap, config: SchedulerConfig) -> Self {
        Self {
            queue: VecDeque::with_capacity(config.queue_capacity),
            map,
            config,
            next_refresh_due: 0,
        }
    }

    /// Queue occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.config.queue_capacity
    }

    /// Enqueue a request.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] when at capacity.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFullError> {
        if self.is_full() {
            return Err(QueueFullError);
        }
        self.queue.push_back(req);
        Ok(())
    }

    /// Put a request back at the head (used when the module rejected a
    /// column access, e.g. the DIVOT gate blocked it).
    pub fn requeue_front(&mut self, req: MemRequest) {
        self.queue.push_front(req);
    }

    /// Decide the command to issue at cycle `now` given the module state.
    pub fn decide(&mut self, module: &DramModule, now: u64, refresh_period: u64) -> Decision {
        // 1. Refresh has priority once due.
        if self.config.refresh_enabled && now >= self.next_refresh_due {
            let all_idle = (0..self.map.banks())
                .all(|b| matches!(module.bank_state(b, now), BankState::Idle));
            if all_idle {
                if module.refreshing(now) {
                    return Decision::Idle;
                }
                self.next_refresh_due = now + refresh_period;
                return Decision::Issue(DramCommand::Refresh, None);
            }
            // Drain: precharge any open bank whose tRAS is satisfied.
            for b in 0..self.map.banks() {
                if let BankState::Opening { opened_at, .. } = module.bank_state(b, now) {
                    if now >= opened_at + module.timing().t_ras {
                        return Decision::Issue(DramCommand::Precharge { bank: b }, None);
                    }
                }
            }
            return Decision::Idle;
        }

        if module.refreshing(now) {
            return Decision::Idle;
        }

        // 2. First ready: oldest row-hit column access. Under strict FCFS
        // only the head of the queue is eligible.
        let hit_window = match self.config.arbiter {
            ArbiterPolicy::FrFcfs => self.queue.len(),
            ArbiterPolicy::Fcfs => self.queue.len().min(1),
        };
        for i in 0..hit_window {
            let req = self.queue[i];
            let d = self.map.decode(req.addr);
            if module.open_row(d.bank, now) == Some(d.row) {
                let req = self.queue.remove(i).expect("index in range");
                let cmd = match req.op {
                    Op::Read => DramCommand::Read {
                        bank: d.bank,
                        col: d.col,
                    },
                    Op::Write => DramCommand::Write {
                        bank: d.bank,
                        col: d.col,
                        data: req.data,
                    },
                };
                return Decision::Issue(cmd, Some(req));
            }
        }

        // 2b. Closed-page housekeeping: precharge any open row no queued
        // request wants.
        if self.config.page == PagePolicy::ClosedPage {
            for b in 0..self.map.banks() {
                if let Some(open) = module.open_row(b, now) {
                    let wanted = self.queue.iter().any(|r| {
                        let d = self.map.decode(r.addr);
                        d.bank == b && d.row == open
                    });
                    if !wanted {
                        if let BankState::Opening { opened_at, .. } =
                            module.bank_state(b, now)
                        {
                            if now >= opened_at + module.timing().t_ras {
                                return Decision::Issue(
                                    DramCommand::Precharge { bank: b },
                                    None,
                                );
                            }
                        }
                    }
                }
            }
        }

        // 3. First come: prepare the oldest request's bank.
        if let Some(&req) = self.queue.front() {
            let d = self.map.decode(req.addr);
            match module.bank_state(d.bank, now) {
                BankState::Idle => {
                    return Decision::Issue(
                        DramCommand::Activate {
                            bank: d.bank,
                            row: d.row,
                        },
                        None,
                    );
                }
                BankState::Opening { row, opened_at, .. }
                    if row != d.row && now >= opened_at + module.timing().t_ras =>
                {
                    return Decision::Issue(
                        DramCommand::Precharge { bank: d.bank },
                        None,
                    );
                }
                _ => {}
            }
        }
        Decision::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramTiming;

    fn setup() -> (Scheduler, DramModule, AddressMap) {
        let map = AddressMap::default();
        (
            Scheduler::new(
                map,
                SchedulerConfig {
                    refresh_enabled: false,
                    ..SchedulerConfig::default()
                },
            ),
            DramModule::new(DramTiming::default(), map),
            map,
        )
    }

    fn req(id: u64, addr: u64, op: Op) -> MemRequest {
        MemRequest {
            id,
            op,
            addr,
            data: id,
            issue_cycle: 0,
        }
    }

    #[test]
    fn empty_queue_idles() {
        let (mut s, m, _) = setup();
        assert_eq!(s.decide(&m, 0, 6240), Decision::Idle);
    }

    #[test]
    fn cold_bank_gets_activate_then_column() {
        let (mut s, mut m, map) = setup();
        s.enqueue(req(1, 2048, Op::Read)).unwrap();
        let d = map.decode(2048);
        match s.decide(&m, 0, 6240) {
            Decision::Issue(DramCommand::Activate { bank, row }, None) => {
                assert_eq!((bank, row), (d.bank, d.row));
                m.issue(DramCommand::Activate { bank, row }, 0).unwrap();
            }
            other => panic!("expected activate, got {other:?}"),
        }
        // Until tRCD the scheduler waits.
        assert_eq!(s.decide(&m, 5, 6240), Decision::Idle);
        match s.decide(&m, 11, 6240) {
            Decision::Issue(DramCommand::Read { bank, col }, Some(r)) => {
                assert_eq!((bank, col), (d.bank, d.col));
                assert_eq!(r.id, 1);
            }
            other => panic!("expected read, got {other:?}"),
        }
        assert!(s.is_empty());
    }

    #[test]
    fn row_hits_bypass_older_misses() {
        let (mut s, mut m, map) = setup();
        // Open row for request 2's address first.
        let hit_addr = 4096;
        let d = map.decode(hit_addr);
        m.issue(
            DramCommand::Activate {
                bank: d.bank,
                row: d.row,
            },
            0,
        )
        .unwrap();
        // Queue: old miss (different bank), then young hit.
        let miss_addr = hit_addr + (1 << 10); // next bank
        s.enqueue(req(1, miss_addr, Op::Read)).unwrap();
        s.enqueue(req(2, hit_addr, Op::Write)).unwrap();
        match s.decide(&m, 11, 6240) {
            Decision::Issue(DramCommand::Write { bank, .. }, Some(r)) => {
                assert_eq!(bank, d.bank);
                assert_eq!(r.id, 2, "row hit should bypass the older miss");
            }
            other => panic!("expected write hit, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_row_precharges_after_tras() {
        let (mut s, mut m, map) = setup();
        let addr_a = 0u64;
        let d = map.decode(addr_a);
        // Open a different row in the same bank.
        m.issue(
            DramCommand::Activate {
                bank: d.bank,
                row: d.row + 1,
            },
            0,
        )
        .unwrap();
        s.enqueue(req(1, addr_a, Op::Read)).unwrap();
        // Before tRAS: idle; after: precharge.
        assert_eq!(s.decide(&m, 10, 6240), Decision::Idle);
        match s.decide(&m, 28, 6240) {
            Decision::Issue(DramCommand::Precharge { bank }, None) => {
                assert_eq!(bank, d.bank)
            }
            other => panic!("expected precharge, got {other:?}"),
        }
    }

    #[test]
    fn refresh_takes_priority_when_due() {
        let map = AddressMap::default();
        let mut s = Scheduler::new(map, SchedulerConfig::default());
        let m = DramModule::new(DramTiming::default(), map);
        // All banks idle at time 0 and refresh due immediately.
        match s.decide(&m, 0, 6240) {
            Decision::Issue(DramCommand::Refresh, None) => {}
            other => panic!("expected refresh, got {other:?}"),
        }
        // Next refresh scheduled one period out.
        s.enqueue(req(1, 0, Op::Read)).unwrap();
        match s.decide(&m, 1, 6240) {
            Decision::Issue(DramCommand::Activate { .. }, None) => {}
            other => panic!("expected activate after refresh scheduled, got {other:?}"),
        }
    }

    #[test]
    fn queue_capacity_enforced() {
        let map = AddressMap::default();
        let mut s = Scheduler::new(
            map,
            SchedulerConfig {
                queue_capacity: 2,
                refresh_enabled: false,
                ..SchedulerConfig::default()
            },
        );
        s.enqueue(req(1, 0, Op::Read)).unwrap();
        s.enqueue(req(2, 1, Op::Read)).unwrap();
        assert!(s.is_full());
        assert_eq!(s.enqueue(req(3, 2, Op::Read)), Err(QueueFullError));
    }

    #[test]
    fn requeue_front_preserves_priority() {
        let (mut s, _, _) = setup();
        s.enqueue(req(2, 100, Op::Read)).unwrap();
        s.requeue_front(req(1, 50, Op::Read));
        assert_eq!(s.len(), 2);
        // Front request is the requeued one.
        let front = s.queue.front().unwrap();
        assert_eq!(front.id, 1);
    }

    #[test]
    fn fcfs_serves_strictly_in_order() {
        let map = AddressMap::default();
        let mut s = Scheduler::new(
            map,
            SchedulerConfig {
                refresh_enabled: false,
                arbiter: ArbiterPolicy::Fcfs,
                ..SchedulerConfig::default()
            },
        );
        let mut m = DramModule::new(DramTiming::default(), map);
        // Open the row of the *younger* request.
        let hit_addr = 4096u64;
        let d = map.decode(hit_addr);
        m.issue(
            DramCommand::Activate {
                bank: d.bank,
                row: d.row,
            },
            0,
        )
        .unwrap();
        let miss_addr = hit_addr + (1 << 10);
        s.enqueue(req(1, miss_addr, Op::Read)).unwrap();
        s.enqueue(req(2, hit_addr, Op::Read)).unwrap();
        // FCFS does NOT let the younger hit bypass: it prepares the head's
        // bank instead.
        match s.decide(&m, 11, 6240) {
            Decision::Issue(DramCommand::Activate { bank, .. }, None) => {
                assert_eq!(bank, map.decode(miss_addr).bank);
            }
            other => panic!("expected head-of-line activate, got {other:?}"),
        }
    }

    #[test]
    fn closed_page_precharges_unwanted_rows() {
        let map = AddressMap::default();
        let mut s = Scheduler::new(
            map,
            SchedulerConfig {
                refresh_enabled: false,
                page: PagePolicy::ClosedPage,
                ..SchedulerConfig::default()
            },
        );
        let mut m = DramModule::new(DramTiming::default(), map);
        // A row is open that nobody in the queue wants.
        m.issue(DramCommand::Activate { bank: 3, row: 17 }, 0).unwrap();
        // After tRAS, the closed-page scheduler closes it even with an
        // empty queue.
        match s.decide(&m, 30, 6240) {
            Decision::Issue(DramCommand::Precharge { bank }, None) => {
                assert_eq!(bank, 3)
            }
            other => panic!("expected closed-page precharge, got {other:?}"),
        }
        // Open-page leaves it alone.
        let mut open = Scheduler::new(
            map,
            SchedulerConfig {
                refresh_enabled: false,
                ..SchedulerConfig::default()
            },
        );
        assert_eq!(open.decide(&m, 30, 6240), Decision::Idle);
    }

    #[test]
    fn closed_page_keeps_wanted_rows_open() {
        let map = AddressMap::default();
        let mut s = Scheduler::new(
            map,
            SchedulerConfig {
                refresh_enabled: false,
                page: PagePolicy::ClosedPage,
                ..SchedulerConfig::default()
            },
        );
        let mut m = DramModule::new(DramTiming::default(), map);
        let addr = 4096u64;
        let d = map.decode(addr);
        m.issue(
            DramCommand::Activate {
                bank: d.bank,
                row: d.row,
            },
            0,
        )
        .unwrap();
        s.enqueue(req(1, addr, Op::Read)).unwrap();
        // The queued request wants the open row: serve it, don't close it.
        match s.decide(&m, 30, 6240) {
            Decision::Issue(DramCommand::Read { bank, .. }, Some(_)) => {
                assert_eq!(bank, d.bank)
            }
            other => panic!("expected read hit, got {other:?}"),
        }
    }
}
