//! Memory requests and physical address mapping.

use serde::{Deserialize, Serialize};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// A read request.
    Read,
    /// A write request (carries the data to store).
    Write,
}

/// One memory request entering the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Unique request id (monotone per workload).
    pub id: u64,
    /// Read or write.
    pub op: Op,
    /// Physical address (word-addressed).
    pub addr: u64,
    /// Write data (ignored for reads).
    pub data: u64,
    /// Cycle the request entered the controller queue.
    pub issue_cycle: u64,
}

/// The decoded DRAM coordinates of an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Decoded {
    /// Bank index.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column index within the row.
    pub col: u64,
}

/// Row:Bank:Column address interleaving.
///
/// Low bits select the column (locality within a row), middle bits the
/// bank (spreads consecutive rows across banks), high bits the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    /// log2 of columns per row.
    pub col_bits: u32,
    /// log2 of banks.
    pub bank_bits: u32,
    /// log2 of rows per bank.
    pub row_bits: u32,
}

impl Default for AddressMap {
    fn default() -> Self {
        // 8 banks × 32768 rows × 1024 columns = 2^28 words.
        Self {
            col_bits: 10,
            bank_bits: 3,
            row_bits: 15,
        }
    }
}

impl AddressMap {
    /// Total addressable words.
    pub fn capacity(&self) -> u64 {
        1u64 << (self.col_bits + self.bank_bits + self.row_bits)
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        1usize << self.bank_bits
    }

    /// Decode an address. Addresses beyond capacity wrap (the model has no
    /// MMU).
    pub fn decode(&self, addr: u64) -> Decoded {
        let a = addr & (self.capacity() - 1);
        let col = a & ((1 << self.col_bits) - 1);
        let bank = ((a >> self.col_bits) & ((1 << self.bank_bits) - 1)) as usize;
        let row = a >> (self.col_bits + self.bank_bits);
        Decoded { bank, row, col }
    }

    /// Re-encode DRAM coordinates into an address (inverse of
    /// [`AddressMap::decode`]).
    pub fn encode(&self, d: Decoded) -> u64 {
        (d.row << (self.col_bits + self.bank_bits))
            | ((d.bank as u64) << self.col_bits)
            | d.col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry() {
        let m = AddressMap::default();
        assert_eq!(m.banks(), 8);
        assert_eq!(m.capacity(), 1 << 28);
    }

    #[test]
    fn decode_encode_round_trip() {
        let m = AddressMap::default();
        for addr in [0u64, 1, 1023, 1024, 123_456_789, (1 << 28) - 1] {
            let d = m.decode(addr);
            assert_eq!(m.encode(d), addr, "addr={addr}");
        }
    }

    #[test]
    fn consecutive_addresses_share_a_row() {
        let m = AddressMap::default();
        let a = m.decode(512);
        let b = m.decode(513);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn row_crossings_switch_banks() {
        let m = AddressMap::default();
        let a = m.decode(1023);
        let b = m.decode(1024);
        assert_ne!(a.bank, b.bank);
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let m = AddressMap::default();
        assert_eq!(m.decode(0), m.decode(m.capacity()));
    }
}
