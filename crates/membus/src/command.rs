//! The DRAM command set carried on the (protected) command/address bus.

use serde::{Deserialize, Serialize};

/// One command on the DRAM command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DramCommand {
    /// Open `row` in `bank` (row access / sense).
    Activate {
        /// Target bank.
        bank: usize,
        /// Row to open.
        row: u64,
    },
    /// Close the open row in `bank`.
    Precharge {
        /// Target bank.
        bank: usize,
    },
    /// Column read from the open row.
    Read {
        /// Target bank.
        bank: usize,
        /// Column within the open row.
        col: u64,
    },
    /// Column write into the open row.
    Write {
        /// Target bank.
        bank: usize,
        /// Column within the open row.
        col: u64,
        /// Data to store.
        data: u64,
    },
    /// Refresh (all banks must be precharged).
    Refresh,
}

impl DramCommand {
    /// The bank a command targets, if bank-specific.
    pub fn bank(&self) -> Option<usize> {
        match *self {
            DramCommand::Activate { bank, .. }
            | DramCommand::Precharge { bank }
            | DramCommand::Read { bank, .. }
            | DramCommand::Write { bank, .. } => Some(bank),
            DramCommand::Refresh => None,
        }
    }

    /// Whether this is a column access (the operation DIVOT gates).
    pub fn is_column_access(&self) -> bool {
        matches!(
            self,
            DramCommand::Read { .. } | DramCommand::Write { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_extraction() {
        assert_eq!(DramCommand::Activate { bank: 3, row: 9 }.bank(), Some(3));
        assert_eq!(DramCommand::Refresh.bank(), None);
    }

    #[test]
    fn column_access_classification() {
        assert!(DramCommand::Read { bank: 0, col: 1 }.is_column_access());
        assert!(DramCommand::Write {
            bank: 0,
            col: 1,
            data: 0
        }
        .is_column_access());
        assert!(!DramCommand::Activate { bank: 0, row: 0 }.is_column_access());
        assert!(!DramCommand::Refresh.is_column_access());
    }
}
