//! The §III example design: a DDR-lite memory system protected by DIVOT.
//!
//! The paper's Fig. 6 integrates an iTDR into both ends of an off-chip
//! memory bus: the CPU's memory controller authenticates the SDRAM module
//! (and watches for probes), while the SDRAM module authenticates the CPU
//! and *gates the column access* on the authentication result, so
//! unauthorized requests — a cold-boot attacker's controller, a swapped
//! module, a foreign bus — never reach the array.
//!
//! This crate is a cycle-level model of that system:
//!
//! * [`request`] — memory requests and physical address mapping.
//! * [`command`] — the DRAM command set.
//! * [`dram`] — the SDRAM module: banks, rows, timing state machines, and
//!   a sparse backing store so data correctness is checkable end-to-end.
//! * [`scheduler`] — request queue with an FR-FCFS arbiter and refresh.
//! * [`controller`] — the CPU-side memory controller.
//! * [`protect`] — the DIVOT integration: two [`BusMonitor`]s sharing the
//!   physical bus channel, CAS gating, attack scripting, and detection-
//!   latency accounting.
//! * [`workload`] — synthetic traces (sequential, random, row-hog, mixed).
//! * [`sim`] — the cycle loop and statistics.
//!
//! [`BusMonitor`]: divot_core::monitor::BusMonitor

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod controller;
pub mod dram;
pub mod protect;
pub mod request;
pub mod scheduler;
pub mod sim;
pub mod workload;

pub use protect::{ProtectedMemorySystem, ProtectionConfig, ScenarioEvent};
pub use sim::{SimConfig, SimStats, Simulation};
