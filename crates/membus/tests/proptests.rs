//! Property-based tests of the memory-system invariants.

use divot_membus::command::DramCommand;
use divot_membus::controller::MemoryController;
use divot_membus::dram::{DramModule, DramTiming};
use divot_membus::request::{AddressMap, MemRequest, Op};
use divot_membus::scheduler::SchedulerConfig;
use proptest::prelude::*;

proptest! {
    #[test]
    fn address_map_bijective(
        addr in 0u64..(1 << 28),
        col_bits in 6u32..12,
        bank_bits in 1u32..4,
    ) {
        let map = AddressMap { col_bits, bank_bits, row_bits: 28 - col_bits - bank_bits };
        let a = addr & (map.capacity() - 1);
        prop_assert_eq!(map.encode(map.decode(a)), a);
        let d = map.decode(a);
        prop_assert!(d.bank < map.banks());
        prop_assert!(d.col < (1 << col_bits));
    }

    #[test]
    fn dram_is_a_memory(writes in proptest::collection::vec((0u64..4096, 0u64..u64::MAX), 1..32)) {
        // Last-write-wins semantics through the full command protocol.
        let map = AddressMap::default();
        let mut m = DramModule::new(DramTiming::default(), map);
        let mut now = 0u64;
        for &(addr, data) in &writes {
            let d = map.decode(addr);
            // Open the row (precharge whatever is open first).
            if m.open_row(d.bank, now) != Some(d.row) {
                if m.open_row(d.bank, now).is_some()
                    || !matches!(m.bank_state(d.bank, now), divot_membus::dram::BankState::Idle)
                {
                    now += 40;
                    let _ = m.issue(DramCommand::Precharge { bank: d.bank }, now);
                    now += 12;
                }
                m.issue(DramCommand::Activate { bank: d.bank, row: d.row }, now).unwrap();
                now += 12;
            }
            m.issue(DramCommand::Write { bank: d.bank, col: d.col, data }, now).unwrap();
            now += 1;
        }
        // Verify last writes via peek.
        let mut expected = std::collections::HashMap::new();
        for &(addr, data) in &writes {
            expected.insert(addr & (map.capacity() - 1), data);
        }
        for (addr, data) in expected {
            prop_assert_eq!(m.peek(addr), Some(data));
        }
    }

    #[test]
    fn controller_completes_everything_submitted(
        addrs in proptest::collection::vec(0u64..10_000, 1..24),
    ) {
        let mut c = MemoryController::new(
            AddressMap::default(),
            SchedulerConfig::default(),
            DramTiming::default(),
        );
        let mut submitted = 0u64;
        for (k, &addr) in addrs.iter().enumerate() {
            if c.submit(MemRequest {
                id: k as u64,
                op: if k % 2 == 0 { Op::Write } else { Op::Read },
                addr,
                data: k as u64,
                issue_cycle: 0,
            }) {
                submitted += 1;
            }
        }
        let mut done = 0u64;
        for cycle in 0..50_000u64 {
            done += c.tick(cycle).len() as u64;
            if c.is_idle() {
                break;
            }
        }
        prop_assert_eq!(done, submitted);
        prop_assert!(c.is_idle());
    }

    #[test]
    fn gated_module_never_serves_data(ops in proptest::collection::vec(0u64..256, 1..16)) {
        let map = AddressMap::default();
        let mut m = DramModule::new(DramTiming::default(), map);
        m.set_access_gate(true);
        let mut now = 0;
        for &addr in &ops {
            let d = map.decode(addr);
            if matches!(m.bank_state(d.bank, now), divot_membus::dram::BankState::Idle) {
                let _ = m.issue(DramCommand::Activate { bank: d.bank, row: d.row }, now);
                now += 12;
            }
            let r = m.issue(DramCommand::Read { bank: d.bank, col: d.col }, now);
            prop_assert!(r.is_err());
            now += 1;
        }
        prop_assert_eq!(m.stats().reads, 0);
        prop_assert_eq!(m.stats().writes, 0);
    }
}
