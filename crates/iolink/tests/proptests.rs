//! Property-based tests of the link framing layer.

use divot_iolink::frame::{crc16, Frame, MAX_PAYLOAD};
use proptest::prelude::*;

proptest! {
    #[test]
    fn frame_round_trips(
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let f = Frame::new(seq, payload);
        let decoded = Frame::decode(&f.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded, f);
    }

    #[test]
    fn single_bit_flips_never_decode_to_a_different_frame(
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        byte_idx in 0usize..80,
        bit in 0u8..8,
    ) {
        let f = Frame::new(seq, payload);
        let mut bytes = f.encode();
        let idx = byte_idx % bytes.len();
        bytes[idx] ^= 1 << bit;
        // CRC-16 catches every single-bit error: either rejected, or (if
        // the flip hit nothing semantic) identical — never silently
        // different.
        if let Ok(g) = Frame::decode(&bytes) {
            prop_assert_eq!(g, f);
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn crc_detects_any_single_byte_change(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        idx in 0usize..128,
        xor in 1u8..=255,
    ) {
        let mut corrupted = data.clone();
        let i = idx % corrupted.len();
        corrupted[i] ^= xor;
        prop_assert_ne!(crc16(&data), crc16(&corrupted));
    }

    #[test]
    fn wire_len_matches_encoding(payload_len in 0usize..MAX_PAYLOAD) {
        let f = Frame::new(0, vec![0xA5; payload_len]);
        prop_assert_eq!(f.encode().len(), f.wire_len());
        prop_assert_eq!(f.wire_bits(), (f.wire_len() * 8) as u64);
    }
}
