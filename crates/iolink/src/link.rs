//! The protected serial link: two endpoints, one physical wire, DIVOT on
//! both ends.
//!
//! Unlike the memory bus (clock-lane probing, column-access gating), a
//! serial link probes with its *own traffic* (§II-E falling-edge triggers
//! on random NRZ data — one usable trigger per four bits on average) and
//! reacts by **dropping the link**: no frame crosses the wire while either
//! end distrusts it.

use crate::frame::Frame;
use divot_analog::frontend::FrontEndConfig;
use divot_analog::linecode::{expected_trigger_density, LineCode};
use divot_core::channel::BusChannel;
use divot_core::itdr::{Itdr, ItdrConfig};
use divot_core::monitor::{BusMonitor, MonitorConfig, MonitorState};
use divot_telemetry::Value;
use divot_txline::scatter::TxLine;
use divot_txline::units::Seconds;
use serde::{Deserialize, Serialize};

/// Link configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// NRZ symbol rate (bits/second on the wire).
    pub symbol_rate: f64,
    /// Monitor policy for both endpoints.
    pub monitor: MonitorConfig,
    /// Instrument configuration for both endpoints.
    pub itdr: ItdrConfig,
    /// Analog front end for both endpoints.
    pub frontend: FrontEndConfig,
    /// Monitors poll once every this many frames sent.
    pub poll_every_frames: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            symbol_rate: 156.25e6,
            monitor: MonitorConfig {
                average_count: 4,
                fails_to_alarm: 2,
                ..MonitorConfig::default()
            },
            itdr: ItdrConfig::embedded(),
            frontend: FrontEndConfig::default(),
            poll_every_frames: 64,
        }
    }
}

/// The link's operational state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkState {
    /// Not brought up yet.
    Down,
    /// Both endpoints trust the wire; frames flow.
    Up,
    /// A DIVOT alarm dropped the link.
    SecurityHalt,
}

/// Events reported by the link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkEvent {
    /// Bring-up (calibration) completed.
    CameUp,
    /// A frame crossed the wire and decoded cleanly.
    FrameDelivered {
        /// The frame's sequence number.
        seq: u32,
    },
    /// A DIVOT alarm halted the link.
    SecurityHalted,
    /// Both ends trust the wire again.
    Recovered,
}

/// Errors returned by [`ProtectedLink::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The link has not been brought up.
    LinkDown,
    /// A security halt is in force.
    SecurityHalt,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LinkDown => f.write_str("link is down"),
            Self::SecurityHalt => f.write_str("security halt in force"),
        }
    }
}

impl std::error::Error for SendError {}

/// Cumulative link statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStatsCounters {
    /// Frames delivered end-to-end.
    pub delivered: u64,
    /// Send attempts refused by a security halt.
    pub refused: u64,
    /// Frames that crossed the wire while a tap was physically present
    /// (the eavesdropper's haul).
    pub exposed: u64,
    /// Monitor polls executed.
    pub polls: u64,
}

/// A DIVOT-protected point-to-point serial link.
#[derive(Debug, Clone)]
pub struct ProtectedLink {
    channel: BusChannel,
    tx_monitor: BusMonitor,
    rx_monitor: BusMonitor,
    config: LinkConfig,
    state: LinkState,
    next_seq: u32,
    frames_since_poll: u64,
    stats: LinkStatsCounters,
}

impl ProtectedLink {
    /// Build a link over the given physical line.
    pub fn new(line: TxLine, mut config: LinkConfig, seed: u64) -> Self {
        // Data-lane probing: one usable trigger per 1/density symbols on
        // average, so the per-trigger wall-clock is set by the traffic.
        let density = expected_trigger_density(LineCode::Nrz);
        config.frontend.pll.clock_period = 1.0 / (config.symbol_rate * density);
        let itdr = Itdr::new(config.itdr);
        Self {
            channel: BusChannel::new(line, config.frontend, seed),
            tx_monitor: BusMonitor::new(itdr, config.monitor),
            rx_monitor: BusMonitor::new(itdr, config.monitor),
            config,
            state: LinkState::Down,
            next_seq: 0,
            frames_since_poll: 0,
            stats: LinkStatsCounters::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// Statistics so far.
    pub fn stats(&self) -> &LinkStatsCounters {
        &self.stats
    }

    /// The shared physical channel (attack injection in simulations).
    pub fn channel_mut(&mut self) -> &mut BusChannel {
        &mut self.channel
    }

    /// The shared physical channel.
    pub fn channel(&self) -> &BusChannel {
        &self.channel
    }

    /// Whether a foreign tap is physically on the wire right now.
    pub fn wire_tapped(&self) -> bool {
        !self.channel.network().taps.is_empty()
    }

    /// Bring the link up: both endpoints calibrate (§III calibration)
    /// and the link enters [`LinkState::Up`].
    pub fn bring_up(&mut self) -> LinkEvent {
        self.tx_monitor.calibrate(&mut self.channel);
        self.rx_monitor.calibrate(&mut self.channel);
        self.state = LinkState::Up;
        self.frames_since_poll = 0;
        LinkEvent::CameUp
    }

    fn poll_monitors(&mut self) -> Vec<LinkEvent> {
        self.stats.polls += 1;
        divot_telemetry::inc("iolink.polls");
        self.tx_monitor.poll(&mut self.channel);
        self.rx_monitor.poll(&mut self.channel);
        let trusted = !self.tx_monitor.is_blocking() && !self.rx_monitor.is_blocking();
        let mut events = Vec::new();
        match (self.state, trusted) {
            (LinkState::Up, false) => {
                self.state = LinkState::SecurityHalt;
                events.push(LinkEvent::SecurityHalted);
                divot_telemetry::inc("iolink.halts");
                divot_telemetry::emit(
                    "iolink.security_halt",
                    &[
                        ("delivered", Value::from(self.stats.delivered)),
                        ("exposed", Value::from(self.stats.exposed)),
                    ],
                );
            }
            (LinkState::SecurityHalt, true) => {
                self.state = LinkState::Up;
                events.push(LinkEvent::Recovered);
                divot_telemetry::inc("iolink.recoveries");
                divot_telemetry::emit(
                    "iolink.recovered",
                    &[("refused", Value::from(self.stats.refused))],
                );
            }
            _ => {}
        }
        events
    }

    /// Send one payload across the link. Returns the events of this
    /// operation (delivery plus any monitor transitions).
    ///
    /// # Errors
    ///
    /// [`SendError::LinkDown`] before bring-up; [`SendError::SecurityHalt`]
    /// while halted (the refusal is counted).
    pub fn send(&mut self, payload: Vec<u8>) -> Result<Vec<LinkEvent>, SendError> {
        match self.state {
            LinkState::Down => return Err(SendError::LinkDown),
            LinkState::SecurityHalt => {
                self.stats.refused += 1;
                divot_telemetry::inc("iolink.frames_refused");
                return Err(SendError::SecurityHalt);
            }
            LinkState::Up => {}
        }
        let frame = Frame::new(self.next_seq, payload);
        self.next_seq = self.next_seq.wrapping_add(1);

        // The frame's bits occupy the wire; the channel clock advances by
        // the transmission time (these same bits feed the iTDRs' trigger
        // FIFOs).
        let tx_time = frame.wire_bits() as f64 / self.config.symbol_rate;
        self.channel.advance(Seconds(tx_time));

        // Wire transport: the tap is a passive listener — it does not
        // corrupt the frame, it *copies* it.
        if self.wire_tapped() {
            self.stats.exposed += 1;
            divot_telemetry::inc("iolink.frames_exposed");
        }
        let decoded = Frame::decode(&frame.encode()).expect("clean wire");
        self.stats.delivered += 1;
        divot_telemetry::inc("iolink.frames_delivered");
        let mut events = vec![LinkEvent::FrameDelivered { seq: decoded.seq }];

        self.frames_since_poll += 1;
        if self.frames_since_poll >= self.config.poll_every_frames {
            self.frames_since_poll = 0;
            events.extend(self.poll_monitors());
        }
        Ok(events)
    }

    /// Idle-time maintenance poll (no frame needed; links also probe
    /// during idle/scrambled fill traffic).
    pub fn idle_poll(&mut self) -> Vec<LinkEvent> {
        if self.state == LinkState::Down {
            return Vec::new();
        }
        self.poll_monitors()
    }

    /// Endpoint monitor states (tx, rx) for inspection.
    pub fn monitor_states(&self) -> (MonitorState, MonitorState) {
        (self.tx_monitor.state(), self.rx_monitor.state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divot_txline::attack::Attack;
    use divot_txline::board::{Board, BoardConfig};

    fn test_link(seed: u64) -> ProtectedLink {
        let board = Board::fabricate(&BoardConfig::paper_prototype(), seed);
        let config = LinkConfig {
            poll_every_frames: 8,
            monitor: MonitorConfig {
                enroll_count: 4,
                average_count: 2,
                fails_to_alarm: 1,
                ..MonitorConfig::default()
            },
            itdr: ItdrConfig::fast(),
            ..LinkConfig::default()
        };
        ProtectedLink::new(board.line(0).clone(), config, seed)
    }

    #[test]
    fn send_requires_bring_up() {
        let mut link = test_link(1);
        assert_eq!(link.state(), LinkState::Down);
        assert_eq!(link.send(vec![1]), Err(SendError::LinkDown));
        assert_eq!(link.bring_up(), LinkEvent::CameUp);
        assert_eq!(link.state(), LinkState::Up);
    }

    #[test]
    fn frames_flow_with_sequence_numbers() {
        let mut link = test_link(2);
        link.bring_up();
        for expect_seq in 0..5u32 {
            let events = link.send(vec![expect_seq as u8; 32]).unwrap();
            assert!(events
                .contains(&LinkEvent::FrameDelivered { seq: expect_seq }));
        }
        assert_eq!(link.stats().delivered, 5);
        assert_eq!(link.stats().exposed, 0);
    }

    #[test]
    fn wiretap_halts_the_link_and_bounds_exposure() {
        let mut link = test_link(3);
        link.bring_up();
        for _ in 0..10 {
            link.send(vec![0xAA; 64]).unwrap();
        }
        link.channel_mut().apply_attack(&Attack::paper_wiretap());
        assert!(link.wire_tapped());
        // Keep sending until the halt lands.
        let mut halted = false;
        for _ in 0..64 {
            match link.send(vec![0x55; 64]) {
                Ok(events) => {
                    if events.contains(&LinkEvent::SecurityHalted) {
                        halted = true;
                        break;
                    }
                }
                Err(SendError::SecurityHalt) => {
                    halted = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(halted, "tap must halt the link");
        assert_eq!(link.state(), LinkState::SecurityHalt);
        // Exposure bounded by ~2 poll periods.
        assert!(
            link.stats().exposed <= 24,
            "exposed {} frames",
            link.stats().exposed
        );
        // Further sends are refused and counted.
        assert_eq!(link.send(vec![1]), Err(SendError::SecurityHalt));
        assert!(link.stats().refused >= 1);
    }

    #[test]
    fn link_recovers_when_tap_removed() {
        let mut link = test_link(4);
        link.bring_up();
        let clean = link.channel().network().clone();
        link.channel_mut().apply_attack(&Attack::paper_wiretap());
        for _ in 0..64 {
            if link.send(vec![0; 16]).is_err() {
                break;
            }
        }
        assert_eq!(link.state(), LinkState::SecurityHalt);
        // Attacker unplugs; idle polls restore trust.
        link.channel_mut().replace_network(clean);
        let mut recovered = false;
        for _ in 0..4 {
            if link.idle_poll().contains(&LinkEvent::Recovered) {
                recovered = true;
                break;
            }
        }
        assert!(recovered);
        assert!(link.send(vec![7; 8]).is_ok());
    }

    #[test]
    fn data_lane_pacing_is_slower_than_clock_lane() {
        // One trigger per 4 bits: the channel's per-trigger period must
        // reflect NRZ trigger density, not the raw symbol rate.
        let link = test_link(5);
        let per_trigger = link.channel().trigger_period();
        assert!((per_trigger - 4.0 / 156.25e6).abs() < 1e-12);
    }
}
