//! DIVOT on a serial I/O link — the paper's §VI future-work direction
//! ("extending the DIVOT design to I/O buses, network interfaces, and
//! data storage systems").
//!
//! A memory bus gave DIVOT a free, perfectly periodic probe (the clock
//! lane). A serial link is harder and more general: the only waveform on
//! the wire is the (scrambled, DC-balanced) data itself, so the iTDR must
//! trigger on the §II-E falling-edge rule, accumulating triggers at a rate
//! set by the traffic — and the security loop rides on frames rather than
//! column accesses:
//!
//! * [`frame`] — a minimal framing layer (sequence numbers + CRC-16), so
//!   the simulation has real payloads whose exposure can be counted.
//! * [`link`] — the protected link: two endpoints on one physical
//!   Tx-line channel, each with a DIVOT monitor; frames flow only while
//!   both monitors trust the wire, and an alarm drops the link (the
//!   §III "reaction", transplanted).
//! * [`sim`] — traffic + attack scenarios + exposure accounting: how many
//!   frames crossed the wire between a tap's insertion and the link
//!   dropping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod link;
pub mod sim;

pub use frame::{DecodeFrameError, Frame};
pub use link::{LinkConfig, LinkEvent, LinkState, ProtectedLink};
pub use sim::{LinkScenarioEvent, LinkSim, LinkSimConfig, LinkStats};
