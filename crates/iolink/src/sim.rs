//! Link-level simulation: traffic, attack scripting, exposure accounting.

use crate::link::{LinkConfig, LinkEvent, ProtectedLink, SendError};
#[cfg(test)]
use crate::link::LinkState;
use divot_dsp::rng::DivotRng;
use divot_txline::attack::Attack;
use divot_txline::board::{Board, BoardConfig};
use serde::{Deserialize, Serialize};

/// A frame-indexed scenario event.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkScenarioEvent {
    /// Apply a physical attack before sending frame `at_frame`.
    Attack {
        /// Frame index the event fires at.
        at_frame: u64,
        /// The attack.
        attack: Attack,
    },
    /// Remove all foreign hardware (restore the clean wire).
    Restore {
        /// Frame index the event fires at.
        at_frame: u64,
    },
}

impl LinkScenarioEvent {
    fn frame(&self) -> u64 {
        match self {
            Self::Attack { at_frame, .. } | Self::Restore { at_frame } => *at_frame,
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct LinkSimConfig {
    /// The link configuration.
    pub link: LinkConfig,
    /// Frames the sender will attempt.
    pub frames: u64,
    /// Payload bytes per frame.
    pub payload_len: usize,
    /// Board / traffic seed.
    pub seed: u64,
}

impl Default for LinkSimConfig {
    fn default() -> Self {
        Self {
            link: LinkConfig::default(),
            frames: 1024,
            payload_len: 256,
            seed: 1,
        }
    }
}

/// Results of a link simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Send attempts.
    pub attempted: u64,
    /// Frames delivered.
    pub delivered: u64,
    /// Send attempts refused by a security halt.
    pub refused: u64,
    /// Frames copied by a tap before the halt.
    pub exposed: u64,
    /// Frame index of the first attack, if any fired.
    pub attack_frame: Option<u64>,
    /// Frame index of the security halt, if one landed.
    pub halt_frame: Option<u64>,
}

impl LinkStats {
    /// Frames between attack insertion and the halt (the eavesdropper's
    /// window).
    pub fn detection_latency_frames(&self) -> Option<u64> {
        match (self.attack_frame, self.halt_frame) {
            (Some(a), Some(h)) if h >= a => Some(h - a),
            _ => None,
        }
    }
}

/// A scripted link simulation.
#[derive(Debug)]
pub struct LinkSim {
    link: ProtectedLink,
    config: LinkSimConfig,
    events: Vec<LinkScenarioEvent>,
    rng: DivotRng,
}

impl LinkSim {
    /// Build the simulation: fabricates a board and brings the link up.
    pub fn new(config: LinkSimConfig) -> Self {
        let board = Board::fabricate(&BoardConfig::paper_prototype(), config.seed);
        let mut link = ProtectedLink::new(board.line(0).clone(), config.link, config.seed);
        link.bring_up();
        Self {
            link,
            rng: DivotRng::derive(config.seed, 0x71A0),
            config,
            events: Vec::new(),
        }
    }

    /// Install the scenario (sorted by frame index).
    pub fn set_scenario(&mut self, mut events: Vec<LinkScenarioEvent>) {
        events.sort_by_key(LinkScenarioEvent::frame);
        self.events = events;
    }

    /// The link (for post-run inspection).
    pub fn link(&self) -> &ProtectedLink {
        &self.link
    }

    /// Run the configured traffic and return the statistics.
    pub fn run(&mut self) -> LinkStats {
        let mut stats = LinkStats::default();
        let clean = self.link.channel().network().clone();
        let mut next_event = 0;
        for frame_idx in 0..self.config.frames {
            while next_event < self.events.len()
                && self.events[next_event].frame() <= frame_idx
            {
                match self.events[next_event].clone() {
                    LinkScenarioEvent::Attack { attack, .. } => {
                        self.link.channel_mut().apply_attack(&attack);
                        stats.attack_frame.get_or_insert(frame_idx);
                    }
                    LinkScenarioEvent::Restore { .. } => {
                        self.link.channel_mut().replace_network(clean.clone());
                    }
                }
                next_event += 1;
            }
            stats.attempted += 1;
            let payload: Vec<u8> = (0..self.config.payload_len)
                .map(|_| self.rng.index(256) as u8)
                .collect();
            match self.link.send(payload) {
                Ok(events) => {
                    if events.contains(&LinkEvent::SecurityHalted)
                        && stats.halt_frame.is_none()
                    {
                        stats.halt_frame = Some(frame_idx);
                    }
                }
                Err(SendError::SecurityHalt) => {
                    if stats.halt_frame.is_none() {
                        stats.halt_frame = Some(frame_idx);
                    }
                    // A halted endpoint keeps probing the wire while idle.
                    self.link.idle_poll();
                }
                Err(SendError::LinkDown) => unreachable!("link was brought up"),
            }
        }
        stats.delivered = self.link.stats().delivered;
        stats.refused = self.link.stats().refused;
        stats.exposed = self.link.stats().exposed;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divot_core::itdr::ItdrConfig;
    use divot_core::monitor::MonitorConfig;

    fn fast_config(seed: u64) -> LinkSimConfig {
        LinkSimConfig {
            link: LinkConfig {
                poll_every_frames: 16,
                monitor: MonitorConfig {
                    enroll_count: 4,
                    average_count: 2,
                    fails_to_alarm: 1,
                    ..MonitorConfig::default()
                },
                itdr: ItdrConfig::fast(),
                ..LinkConfig::default()
            },
            frames: 256,
            payload_len: 64,
            seed,
        }
    }

    #[test]
    fn clean_link_delivers_everything() {
        let stats = LinkSim::new(fast_config(10)).run();
        assert_eq!(stats.delivered, 256);
        assert_eq!(stats.refused, 0);
        assert_eq!(stats.exposed, 0);
        assert_eq!(stats.detection_latency_frames(), None);
    }

    #[test]
    fn tap_exposure_is_bounded_by_polling() {
        let mut sim = LinkSim::new(fast_config(11));
        sim.set_scenario(vec![LinkScenarioEvent::Attack {
            at_frame: 100,
            attack: Attack::paper_wiretap(),
        }]);
        let stats = sim.run();
        let latency = stats.detection_latency_frames().expect("must halt");
        assert!(latency <= 32, "latency {latency} frames");
        assert!(stats.exposed <= 32, "exposed {}", stats.exposed);
        assert!(stats.refused > 0, "halt must refuse the rest");
    }

    #[test]
    fn restore_resumes_delivery() {
        let mut sim = LinkSim::new(fast_config(12));
        sim.set_scenario(vec![
            LinkScenarioEvent::Attack {
                at_frame: 64,
                attack: Attack::paper_wiretap(),
            },
            LinkScenarioEvent::Restore { at_frame: 128 },
        ]);
        let stats = sim.run();
        assert!(stats.halt_frame.is_some());
        // Most of the post-restore traffic gets through.
        assert!(
            stats.delivered > 160,
            "delivered {} of {}",
            stats.delivered,
            stats.attempted
        );
        assert_eq!(sim.link().state(), LinkState::Up);
    }

    #[test]
    fn runs_are_reproducible() {
        let mut a = LinkSim::new(fast_config(13));
        let mut b = LinkSim::new(fast_config(13));
        let scenario = vec![LinkScenarioEvent::Attack {
            at_frame: 50,
            attack: Attack::paper_magnetic_probe(),
        }];
        a.set_scenario(scenario.clone());
        b.set_scenario(scenario);
        assert_eq!(a.run(), b.run());
    }
}
