//! Minimal link framing: sequence number, length, payload, CRC-16.
//!
//! Wire format (bytes):
//!
//! ```text
//! 0xD1 0x07 | seq:u32le | len:u16le | payload… | crc16:u16le
//! ```
//!
//! The CRC is CRC-16/CCITT-FALSE over everything before it (including the
//! preamble). The framing exists so the link simulation can count *real
//! payload exposure* under an eavesdropping attack, and so corruption-
//! detection behavior is testable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Frame preamble bytes.
pub const PREAMBLE: [u8; 2] = [0xD1, 0x07];
/// Maximum payload length.
pub const MAX_PAYLOAD: usize = 4096;

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection).
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// One link frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Sequence number.
    pub seq: u32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Frame decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeFrameError {
    /// Missing or wrong preamble.
    BadPreamble,
    /// Buffer shorter than the header or declared payload.
    Truncated,
    /// Declared length exceeds [`MAX_PAYLOAD`].
    TooLong,
    /// CRC mismatch (corruption on the wire).
    BadCrc,
}

impl fmt::Display for DecodeFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::BadPreamble => "bad preamble",
            Self::Truncated => "truncated frame",
            Self::TooLong => "declared length exceeds maximum",
            Self::BadCrc => "CRC mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DecodeFrameError {}

impl Frame {
    /// Create a frame.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`].
    pub fn new(seq: u32, payload: Vec<u8>) -> Self {
        assert!(payload.len() <= MAX_PAYLOAD, "payload too long");
        Self { seq, payload }
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(10 + self.payload.len());
        out.extend_from_slice(&PREAMBLE);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc16(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode from wire bytes (must contain exactly one frame).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeFrameError`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeFrameError> {
        if bytes.len() < 10 {
            return Err(DecodeFrameError::Truncated);
        }
        if bytes[0..2] != PREAMBLE {
            return Err(DecodeFrameError::BadPreamble);
        }
        let seq = u32::from_le_bytes(bytes[2..6].try_into().expect("4 bytes"));
        let len = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes")) as usize;
        if len > MAX_PAYLOAD {
            return Err(DecodeFrameError::TooLong);
        }
        if bytes.len() != 10 + len {
            return Err(DecodeFrameError::Truncated);
        }
        let crc_stored = u16::from_le_bytes(
            bytes[8 + len..10 + len].try_into().expect("2 bytes"),
        );
        if crc16(&bytes[..8 + len]) != crc_stored {
            return Err(DecodeFrameError::BadCrc);
        }
        Ok(Self {
            seq,
            payload: bytes[8..8 + len].to_vec(),
        })
    }

    /// Wire size in bytes.
    pub fn wire_len(&self) -> usize {
        10 + self.payload.len()
    }

    /// Wire size in bits (NRZ unit intervals) — what sets the frame's
    /// transmission time and how many iTDR triggers it donates.
    pub fn wire_bits(&self) -> u64 {
        self.wire_len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
        assert_eq!(crc16(b""), 0xFFFF);
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = Frame::new(42, b"hello divot".to_vec());
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.wire_len());
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn empty_payload_round_trips() {
        let f = Frame::new(0, Vec::new());
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
        assert_eq!(f.wire_bits(), 80);
    }

    #[test]
    fn corruption_is_detected() {
        let f = Frame::new(7, vec![1, 2, 3, 4]);
        let mut bytes = f.encode();
        for i in 2..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                Frame::decode(&corrupt).is_err(),
                "flip at byte {i} must not decode cleanly"
            );
        }
        bytes[0] = 0;
        assert_eq!(Frame::decode(&bytes), Err(DecodeFrameError::BadPreamble));
    }

    #[test]
    fn truncation_and_length_errors() {
        let f = Frame::new(1, vec![9; 16]);
        let bytes = f.encode();
        assert_eq!(
            Frame::decode(&bytes[..bytes.len() - 1]),
            Err(DecodeFrameError::Truncated)
        );
        assert_eq!(Frame::decode(&bytes[..5]), Err(DecodeFrameError::Truncated));
        // Declared length beyond maximum.
        let mut huge = bytes.clone();
        huge[6] = 0xFF;
        huge[7] = 0xFF;
        assert_eq!(Frame::decode(&huge), Err(DecodeFrameError::TooLong));
    }

    #[test]
    #[should_panic(expected = "payload too long")]
    fn oversized_payload_rejected() {
        let _ = Frame::new(0, vec![0; MAX_PAYLOAD + 1]);
    }
}
