//! Property-based tests of the numeric substrate's invariants.

use divot_dsp::gaussian::{DiscreteModulatedCdf, PlainCdf, ProbabilityMap, TriangleModulatedCdf};
use divot_dsp::quadrature::GaussHermite;
use divot_dsp::rng::DivotRng;
use divot_dsp::similarity::{cosine, error_function, similarity};
use divot_dsp::stats::{Accumulator, Histogram};
use divot_dsp::waveform::Waveform;
use divot_dsp::{erf, RocCurve};
use proptest::prelude::*;

fn finite_sample() -> impl Strategy<Value = f64> {
    (-1e3f64..1e3).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    #[test]
    fn erf_bounded_and_odd(x in -50.0f64..50.0) {
        let v = erf::erf(x);
        prop_assert!((-1.0..=1.0).contains(&v));
        prop_assert!((v + erf::erf(-x)).abs() < 1e-12);
    }

    #[test]
    fn erf_erfc_complement(x in -30.0f64..30.0) {
        prop_assert!((erf::erf(x) + erf::erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probit_inverts_cdf(x in -5.0f64..5.0) {
        let p = divot_dsp::gaussian::std_cdf(x);
        prop_assert!((erf::probit(p) - x).abs() < 1e-7);
    }

    #[test]
    fn plain_cdf_round_trips(
        reference in -0.1f64..0.1,
        sigma in 1e-4f64..1e-2,
        offset in -3.0f64..3.0,
    ) {
        let m = PlainCdf::new(reference, sigma);
        let v = reference + offset * sigma;
        let p = m.probability(v);
        prop_assert!((m.voltage(p) - v).abs() < 1e-8 * (1.0 + v.abs()));
    }

    #[test]
    fn triangle_cdf_monotone_and_invertible(
        center in -0.05f64..0.05,
        amp in 1e-3f64..0.05,
        sigma in 1e-4f64..5e-3,
        frac in -0.9f64..0.9,
    ) {
        let m = TriangleModulatedCdf::new(center, amp, sigma);
        // Monotone on a coarse grid.
        let mut prev = -1.0;
        for i in 0..40 {
            let v = center - amp - 3.0 * sigma
                + (2.0 * amp + 6.0 * sigma) * i as f64 / 39.0;
            let p = m.probability(v);
            prop_assert!(p >= prev - 1e-12);
            prev = p;
        }
        // Invertible inside the sweep.
        let v = center + frac * amp;
        let p = m.probability(v);
        prop_assert!((m.voltage(p) - v).abs() < 1e-7);
    }

    #[test]
    fn discrete_cdf_round_trips_near_levels(
        levels in proptest::collection::vec(-0.02f64..0.02, 1..12),
        sigma in 5e-4f64..5e-3,
        which in 0usize..12,
        offset in -1.5f64..1.5,
    ) {
        // Inversion is well-conditioned where the mixture has sensitivity:
        // within ~2σ of a reference level. (Between widely spaced levels
        // the CDF plateaus and any voltage on the plateau is equivalent —
        // that is the dynamic-range limit PDM level spacing controls.)
        let m = DiscreteModulatedCdf::new(levels.clone(), sigma);
        let v = levels[which % levels.len()] + offset * sigma;
        let p = m.probability(v);
        prop_assert!((m.voltage(p) - v).abs() < 1e-6, "v={v}");
    }

    #[test]
    fn cosine_bounded(
        xs in proptest::collection::vec(finite_sample(), 2..64),
        ys in proptest::collection::vec(finite_sample(), 2..64),
    ) {
        let n = xs.len().min(ys.len());
        let c = cosine(&xs[..n], &ys[..n]);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&c));
        // Symmetric.
        prop_assert!((c - cosine(&ys[..n], &xs[..n])).abs() < 1e-12);
    }

    #[test]
    fn similarity_self_is_one_and_bounded(
        xs in proptest::collection::vec(finite_sample(), 3..64),
    ) {
        let w = Waveform::new(0.0, 1.0, xs);
        let s = similarity(&w, &w);
        // Constant waveforms have zero energy after mean removal → 0.
        prop_assert!(s == 0.0 || (s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn error_function_nonnegative_and_symmetric(
        xs in proptest::collection::vec(finite_sample(), 2..64),
        ys in proptest::collection::vec(finite_sample(), 2..64),
    ) {
        let n = xs.len().min(ys.len());
        let a = Waveform::new(0.0, 1.0, xs[..n].to_vec());
        let b = Waveform::new(0.0, 1.0, ys[..n].to_vec());
        let e1 = error_function(&a, &b);
        let e2 = error_function(&b, &a);
        prop_assert!(e1.samples().iter().all(|&v| v >= 0.0));
        prop_assert_eq!(e1.samples(), e2.samples());
    }

    #[test]
    fn roc_invariants(
        genuine in proptest::collection::vec(0.0f64..1.0, 2..64),
        impostor in proptest::collection::vec(0.0f64..1.0, 2..64),
    ) {
        let roc = RocCurve::from_scores(&genuine, &impostor);
        prop_assert!((0.0..=1.0).contains(&roc.eer()));
        prop_assert!((0.0..=1.0).contains(&roc.auc()));
        // Rates monotone non-increasing in threshold.
        for w in roc.points().windows(2) {
            prop_assert!(w[1].fpr <= w[0].fpr + 1e-12);
            prop_assert!(w[1].tpr <= w[0].tpr + 1e-12);
        }
        // Endpoints.
        prop_assert_eq!(roc.points()[0].fpr, 1.0);
        prop_assert_eq!(roc.points().last().unwrap().tpr, 0.0);
    }

    #[test]
    fn histogram_conserves_samples(
        xs in proptest::collection::vec(-10.0f64..10.0, 0..256),
        bins in 1usize..32,
    ) {
        let mut h = Histogram::new(-5.0, 5.0, bins);
        h.push_all(&xs);
        prop_assert_eq!(h.total() as usize, xs.len());
        let in_range: u64 = h.counts().iter().sum();
        prop_assert_eq!(in_range + h.underflow() + h.overflow(), xs.len() as u64);
    }

    #[test]
    fn accumulator_matches_batch_stats(
        xs in proptest::collection::vec(-100.0f64..100.0, 2..128),
    ) {
        let acc: Accumulator = xs.iter().copied().collect();
        prop_assert!((acc.mean() - divot_dsp::stats::mean(&xs)).abs() < 1e-9);
        prop_assert!(
            (acc.variance() - divot_dsp::stats::variance(&xs)).abs()
                < 1e-6 * (1.0 + acc.variance())
        );
    }

    #[test]
    fn waveform_resample_identity(
        xs in proptest::collection::vec(finite_sample(), 2..64),
        dt in 1e-12f64..1e-9,
    ) {
        let w = Waveform::new(0.0, dt, xs);
        let r = w.resampled(w.t0(), w.dt(), w.len());
        for (a, b) in w.samples().iter().zip(r.samples()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn binomial_support_is_0_to_n(
        seed in any::<u64>(),
        n in 0u64..200_000,
        p in 0.0f64..1.0,
    ) {
        // Both the inverse-CDF and the rejection branch, every p regime;
        // the closed endpoints are degenerate and checked exactly.
        let k = DivotRng::seed_from_u64(seed).binomial(n, p);
        prop_assert!(k <= n, "k={k} > n={n} at p={p}");
        prop_assert_eq!(DivotRng::seed_from_u64(seed).binomial(n, 1.0), n);
        prop_assert_eq!(DivotRng::seed_from_u64(seed).binomial(n, 0.0), 0);
    }

    #[test]
    fn binomial_is_a_pure_function_of_the_seed(
        seed in any::<u64>(),
        n in 1u64..50_000,
        p in 0.001f64..0.999,
    ) {
        let mut a = DivotRng::seed_from_u64(seed);
        let mut b = DivotRng::seed_from_u64(seed);
        // Same seed, same (n, p) sequence → identical draws *and*
        // identical stream positions afterwards.
        for _ in 0..4 {
            prop_assert_eq!(a.binomial(n, p), b.binomial(n, p));
        }
        prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
    }

    #[test]
    fn binomial_matches_moments(
        seed in any::<u64>(),
        n in 20u64..5_000,
        p in 0.01f64..0.99,
    ) {
        let mut rng = DivotRng::seed_from_u64(seed);
        let draws = 1_500;
        let xs: Vec<f64> = (0..draws).map(|_| rng.binomial(n, p) as f64).collect();
        let want_mean = n as f64 * p;
        let want_var = n as f64 * p * (1.0 - p);
        // 6-sigma band on the sample mean; generous (×2 + slack) band on
        // the sample variance (its own sampling error is ~√(2/draws)·var).
        let mean_tol = 6.0 * (want_var / draws as f64).sqrt();
        prop_assert!(
            (divot_dsp::stats::mean(&xs) - want_mean).abs() < mean_tol,
            "mean off: {} vs {want_mean}", divot_dsp::stats::mean(&xs)
        );
        let var = divot_dsp::stats::variance(&xs);
        prop_assert!(
            var > 0.5 * want_var && var < 2.0 * want_var + 1.0,
            "variance off: {var} vs {want_var}"
        );
    }

    #[test]
    fn gauss_hermite_reproduces_the_probit_identity(
        a in -2.0f64..2.0,
        b in -3.0f64..3.0,
        mu in -1.0f64..1.0,
        sigma in 0.0f64..0.8,
    ) {
        // E[Φ(a + bT)] has an exact closed form for T ~ N(μ, σ²); the
        // fixed 9-node rule the acquisition path uses must reproduce it.
        let q = GaussHermite::new(9);
        let got = q.expect_normal(mu, sigma, |t| divot_dsp::gaussian::std_cdf(a + b * t));
        let want = divot_dsp::gaussian::std_cdf(
            (a + b * mu) / (1.0f64 + b * b * sigma * sigma).sqrt(),
        );
        // Quadrature error grows with the smoothing ratio |b·σ| (how many
        // comparator sigmas one jitter sigma sweeps); the acquisition path
        // operates well below 1, where the rule is ~1e-6 accurate.
        let ratio = (b * sigma).abs();
        let tol = 1e-4 + 3e-3 * ratio * ratio;
        prop_assert!((got - want).abs() < tol, "got {got} want {want} ratio {ratio}");
        prop_assert!((0.0..=1.0).contains(&got.clamp(0.0, 1.0)));
    }

    #[test]
    fn moving_average_bounded_by_extremes(
        xs in proptest::collection::vec(finite_sample(), 1..64),
        half in 0usize..8,
    ) {
        let w = Waveform::new(0.0, 1.0, xs.clone());
        let f = divot_dsp::filter::moving_average(&w, half);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &v in f.samples() {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn mad_is_robust_and_shift_invariant(
        xs in proptest::collection::vec(finite_sample(), 1..64),
        shift in -1e3f64..1e3,
    ) {
        use divot_dsp::stats::median_abs_deviation;
        let mad = median_abs_deviation(&xs).expect("non-empty");
        // MAD is non-negative and bounded by the half-range.
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mad >= 0.0);
        prop_assert!(mad <= (hi - lo) + 1e-9, "mad={mad} range={}", hi - lo);
        // Shifting every sample leaves the MAD unchanged.
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let mad_shifted = median_abs_deviation(&shifted).expect("non-empty");
        prop_assert!(
            (mad - mad_shifted).abs() < 1e-6 * (1.0 + mad.abs()),
            "mad={mad} shifted={mad_shifted}"
        );
    }

    #[test]
    fn mad_of_constant_slice_is_zero(
        value in finite_sample(),
        n in 1usize..32,
    ) {
        use divot_dsp::stats::median_abs_deviation;
        let xs = vec![value; n];
        prop_assert_eq!(median_abs_deviation(&xs), Some(0.0));
        prop_assert_eq!(median_abs_deviation(&[]), None);
        prop_assert_eq!(median_abs_deviation(&[value]), Some(0.0));
    }

    #[test]
    fn trimmed_mean_bounded_and_degenerate_cases(
        xs in proptest::collection::vec(finite_sample(), 1..64),
        trim in 0.0f64..0.5,
        value in finite_sample(),
    ) {
        use divot_dsp::stats::trimmed_mean;
        let tm = trimmed_mean(&xs, trim).expect("non-empty");
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(tm >= lo - 1e-9 && tm <= hi + 1e-9, "tm={tm} not in [{lo},{hi}]");
        // Empty slice → None; single element / constant slices return the
        // value itself at any trim.
        prop_assert_eq!(trimmed_mean(&[], trim), None);
        prop_assert_eq!(trimmed_mean(&[value], trim), Some(value));
        let constant = vec![value; xs.len()];
        let tc = trimmed_mean(&constant, trim).expect("non-empty");
        prop_assert!((tc - value).abs() < 1e-9 * (1.0 + value.abs()));
        // Zero trim is the plain mean.
        let plain = trimmed_mean(&xs, 0.0).expect("non-empty");
        prop_assert!((plain - divot_dsp::stats::mean(&xs)).abs() < 1e-9 * (1.0 + plain.abs()));
    }

    #[test]
    fn summary_mad_matches_free_function(
        xs in proptest::collection::vec(finite_sample(), 1..64),
    ) {
        use divot_dsp::stats::{median_abs_deviation, Summary};
        let s = Summary::of(&xs);
        prop_assert_eq!(Some(s.mad), median_abs_deviation(&xs));
        // The streaming snapshot cannot compute a MAD.
        let acc: Accumulator = xs.iter().copied().collect();
        prop_assert!(acc.summary().mad.is_nan());
    }
}
