//! A small radix-2 FFT for frequency-domain cross-validation and fast
//! convolution.
//!
//! Used to derive S-parameters from time-domain scattering responses (see
//! `divot-txline`'s frequency-domain tests), for spectral analysis of
//! reconstructed IIPs, and — via [`convolve_real`] / [`fft_real_padded`] /
//! [`ifft_in_place`] — for the LTI impulse-response fast path in
//! `divot_txline::impulse`, which synthesizes edge responses for new drive
//! shapes by convolution instead of re-running the scattering engine. The
//! iTDR itself still never needs an FFT (that's the point of the
//! architecture); the simulator merely uses one to go faster.

/// A complex number as a `(re, im)` pair.
pub type Complex = (f64, f64);

fn c_add(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

fn c_sub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

fn c_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// Magnitude of a complex value.
pub fn magnitude(a: Complex) -> f64 {
    (a.0 * a.0 + a.1 * a.1).sqrt()
}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = c_mul(data[start + k + len / 2], w);
                data[start + k] = c_add(u, v);
                data[start + k + len / 2] = c_sub(u, v);
                w = c_mul(w, wlen);
            }
        }
        len <<= 1;
    }
}

/// In-place inverse FFT (the exact inverse of [`fft_in_place`], including
/// the `1/n` normalization), via the conjugation identity
/// `ifft(x) = conj(fft(conj(x)))/n`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    for v in data.iter_mut() {
        v.1 = -v.1;
    }
    fft_in_place(data);
    let n = data.len().max(1) as f64;
    for v in data.iter_mut() {
        *v = (v.0 / n, -v.1 / n);
    }
}

/// FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum (length = padded size).
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    fft_real_padded(signal, signal.len().next_power_of_two().max(1))
}

/// FFT of a real signal zero-padded to an explicit power-of-two size `n`
/// (used when several signals must share one spectral grid, e.g. fast
/// convolution against a precomputed kernel spectrum).
///
/// # Panics
///
/// Panics if `n` is not a power of two or is smaller than the signal.
pub fn fft_real_padded(signal: &[f64], n: usize) -> Vec<Complex> {
    assert!(n >= signal.len(), "pad size must cover the signal");
    let mut data: Vec<Complex> = signal.iter().map(|&x| (x, 0.0)).collect();
    data.resize(n, (0.0, 0.0));
    fft_in_place(&mut data);
    data
}

/// First `n_out` samples of the linear convolution `a ⊛ b`, computed by
/// FFT. The transform size covers the full linear convolution, so there is
/// no circular aliasing in the returned prefix.
pub fn convolve_real(a: &[f64], b: &[f64], n_out: usize) -> Vec<f64> {
    if a.is_empty() || b.is_empty() || n_out == 0 {
        return vec![0.0; n_out];
    }
    let n = (a.len() + b.len() - 1).next_power_of_two();
    let fa = fft_real_padded(a, n);
    let mut fb = fft_real_padded(b, n);
    for (x, y) in fb.iter_mut().zip(&fa) {
        *x = c_mul(*x, *y);
    }
    ifft_in_place(&mut fb);
    fb.iter().take(n_out).map(|&(re, _)| re).collect()
}

/// The frequency (Hz) of spectrum bin `k` for a signal sampled at `dt`
/// seconds with the given padded FFT size.
pub fn bin_frequency(k: usize, fft_size: usize, dt: f64) -> f64 {
    k as f64 / (fft_size as f64 * dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut sig = vec![0.0; 16];
        sig[0] = 1.0;
        let spec = fft_real(&sig);
        for &bin in &spec {
            assert!((magnitude(bin) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dc_concentrates_in_bin_zero() {
        let spec = fft_real(&[2.0; 8]);
        assert!((magnitude(spec[0]) - 16.0).abs() < 1e-12);
        for &bin in &spec[1..] {
            assert!(magnitude(bin) < 1e-12);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 64;
        let k0 = 5;
        let sig: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&sig);
        // Energy splits between bins k0 and n−k0.
        assert!((magnitude(spec[k0]) - n as f64 / 2.0).abs() < 1e-9);
        assert!((magnitude(spec[n - k0]) - n as f64 / 2.0).abs() < 1e-9);
        assert!(magnitude(spec[k0 + 1]) < 1e-9);
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let sig: Vec<f64> = (0..32).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let spec = fft_real(&sig);
        let time_energy: f64 = sig.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            spec.iter().map(|&b| magnitude(b).powi(2)).sum::<f64>() / spec.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let a: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft_real(&a);
        let fb = fft_real(&b);
        let fsum = fft_real(&sum);
        for k in 0..16 {
            let expect = c_add(fa[k], fb[k]);
            assert!((fsum[k].0 - expect.0).abs() < 1e-9);
            assert!((fsum[k].1 - expect.1).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_pads_to_power_of_two() {
        let spec = fft_real(&[1.0, 2.0, 3.0]);
        assert_eq!(spec.len(), 4);
    }

    #[test]
    fn bin_frequencies() {
        // 1 ns sampling, 1024 bins: bin 1 = ~0.977 MHz... with dt=1e-9 and
        // size 1024: f1 = 1/(1024e-9) ≈ 976.6 kHz.
        let f = bin_frequency(1, 1024, 1e-9);
        assert!((f - 976_562.5).abs() < 1.0);
        assert_eq!(bin_frequency(0, 64, 1e-12), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut d = vec![(0.0, 0.0); 6];
        fft_in_place(&mut d);
    }

    #[test]
    fn ifft_inverts_fft() {
        let sig: Vec<Complex> = (0..32)
            .map(|i| ((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut data = sig.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (orig, round) in sig.iter().zip(&data) {
            assert!((orig.0 - round.0).abs() < 1e-12);
            assert!((orig.1 - round.1).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_convolution_matches_direct() {
        let a: Vec<f64> = (0..23).map(|i| ((i * 5 + 1) % 7) as f64 - 3.0).collect();
        let b: Vec<f64> = (0..17).map(|i| ((i * 3 + 2) % 5) as f64 * 0.5).collect();
        let n_out = a.len() + b.len() - 1;
        let fast = convolve_real(&a, &b, n_out);
        for (n, &y) in fast.iter().enumerate() {
            let direct: f64 = (0..=n)
                .filter(|&m| m < a.len() && n - m < b.len())
                .map(|m| a[m] * b[n - m])
                .sum();
            assert!((y - direct).abs() < 1e-10, "n={n}: {y} vs {direct}");
        }
    }

    #[test]
    fn convolution_prefix_has_no_circular_aliasing() {
        // An impulse at the end of `b` shifts `a` to the tail; the prefix
        // before the shift must be exactly zero-free of wraparound.
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let mut b = vec![0.0; 8];
        b[7] = 1.0;
        let y = convolve_real(&a, &b, 11);
        for (i, &v) in y.iter().enumerate().take(7) {
            assert!(v.abs() < 1e-12, "y[{i}]={v}");
        }
        assert!((y[7] - 1.0).abs() < 1e-12);
        assert!((y[10] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn convolution_with_empty_operand_is_zero() {
        assert_eq!(convolve_real(&[], &[1.0, 2.0], 3), vec![0.0; 3]);
        assert_eq!(convolve_real(&[1.0], &[], 2), vec![0.0; 2]);
    }
}
