//! Smoothing filters used on reconstructed IIP waveforms.
//!
//! The iTDR averages out comparator noise across repetitions, but residual
//! per-point estimation noise remains; a light smoothing pass before
//! similarity scoring matches what a hardware post-processing block (a short
//! FIR) would do.

use crate::waveform::Waveform;

/// Centered moving-average filter of half-width `half` (window `2·half+1`),
/// with edge windows shrunk symmetrically.
///
/// `half == 0` returns the input unchanged.
pub fn moving_average(w: &Waveform, half: usize) -> Waveform {
    if half == 0 || w.is_empty() {
        return w.clone();
    }
    let s = w.samples();
    let n = s.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let k = half.min(i).min(n - 1 - i);
        let lo = i - k;
        let hi = i + k;
        let sum: f64 = s[lo..=hi].iter().sum();
        out.push(sum / (hi - lo + 1) as f64);
    }
    Waveform::new(w.t0(), w.dt(), out)
}

/// Gaussian-kernel smoothing with standard deviation `sigma` expressed in
/// samples. The kernel is truncated at ±4σ and renormalized at the edges.
///
/// `sigma <= 0` returns the input unchanged.
pub fn gaussian_smooth(w: &Waveform, sigma: f64) -> Waveform {
    if sigma <= 0.0 || w.is_empty() {
        return w.clone();
    }
    let s = w.samples();
    let n = s.len();
    let radius = (4.0 * sigma).ceil() as usize;
    let kernel: Vec<f64> = (0..=radius)
        .map(|k| (-0.5 * (k as f64 / sigma).powi(2)).exp())
        .collect();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut acc = s[i] * kernel[0];
        let mut norm = kernel[0];
        for k in 1..=radius {
            if i >= k {
                acc += s[i - k] * kernel[k];
                norm += kernel[k];
            }
            if i + k < n {
                acc += s[i + k] * kernel[k];
                norm += kernel[k];
            }
        }
        out.push(acc / norm);
    }
    Waveform::new(w.t0(), w.dt(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivotRng;

    #[test]
    fn moving_average_zero_half_is_identity() {
        let w = Waveform::new(0.0, 1.0, vec![1.0, 5.0, -2.0]);
        assert_eq!(moving_average(&w, 0).samples(), w.samples());
    }

    #[test]
    fn moving_average_flattens_impulse() {
        let w = Waveform::new(0.0, 1.0, vec![0.0, 0.0, 3.0, 0.0, 0.0]);
        let f = moving_average(&w, 1);
        assert_eq!(f.samples(), &[0.0, 1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn moving_average_preserves_constant() {
        let w = Waveform::new(0.0, 1.0, vec![2.0; 16]);
        let f = moving_average(&w, 3);
        for &v in f.samples() {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_preserves_mean() {
        let w = Waveform::new(0.0, 1.0, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let f = moving_average(&w, 2);
        // Symmetric shrinking windows preserve the total for linear data.
        assert!((f.mean() - w.mean()).abs() < 0.3);
    }

    #[test]
    fn gaussian_smooth_reduces_noise_energy() {
        let mut rng = DivotRng::seed_from_u64(9);
        let w = Waveform::from_fn(0.0, 1.0, 512, |_| rng.normal(0.0, 1.0));
        let f = gaussian_smooth(&w, 2.0);
        assert!(f.energy() < 0.5 * w.energy());
    }

    #[test]
    fn gaussian_smooth_zero_sigma_is_identity() {
        let w = Waveform::new(0.0, 1.0, vec![1.0, -1.0, 2.0]);
        assert_eq!(gaussian_smooth(&w, 0.0).samples(), w.samples());
    }

    #[test]
    fn gaussian_smooth_preserves_constant() {
        let w = Waveform::new(0.0, 1.0, vec![3.0; 32]);
        let f = gaussian_smooth(&w, 1.5);
        for &v in f.samples() {
            assert!((v - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn filters_keep_grid() {
        let w = Waveform::new(2.0, 0.25, vec![0.0; 8]);
        let f = gaussian_smooth(&w, 1.0);
        assert_eq!(f.t0(), 2.0);
        assert_eq!(f.dt(), 0.25);
        assert_eq!(f.len(), 8);
    }

    #[test]
    fn empty_waveform_passthrough() {
        let w = Waveform::zeros(0.0, 1.0, 0);
        assert!(moving_average(&w, 3).is_empty());
        assert!(gaussian_smooth(&w, 1.0).is_empty());
    }
}
