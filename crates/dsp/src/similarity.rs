//! The paper's similarity and error functions (Eq. 4 and 5) plus peak
//! extraction for tamper localization.
//!
//! * **Similarity** `S_xy = Σ x(n)·y(n)` normalized to `[0, 1]` — we use the
//!   cosine (normalized inner product) of the mean-removed IIP waveforms,
//!   clamped at 0, which matches the paper's "normalized to have a value
//!   ranging from 0 to 1".
//! * **Error function** `E_xy(n) = [x(n) − y(n)]²` — a large value at index
//!   `n₀` indicates a tamper at the corresponding location (time/distance).

use crate::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// Normalized inner-product similarity of two equal-length sample slices.
///
/// Mean is *not* removed here; see [`similarity`] for the IIP-level entry
/// point. Returns 0 if either input has zero energy.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "similarity requires equal lengths");
    let mut dot = 0.0;
    let mut ex = 0.0;
    let mut ey = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        dot += a * b;
        ex += a * a;
        ey += b * b;
    }
    if ex == 0.0 || ey == 0.0 {
        return 0.0;
    }
    dot / (ex.sqrt() * ey.sqrt())
}

/// The paper's normalized similarity `S_xy ∈ [0, 1]` between two IIP
/// waveforms (Eq. 4): cosine of the mean-removed waveforms, clamped at 0.
///
/// Genuine (same Tx-line) pairs score near 1; impostor (different Tx-line)
/// pairs score substantially lower.
///
/// # Panics
///
/// Panics if the waveforms have different lengths.
pub fn similarity(x: &Waveform, y: &Waveform) -> f64 {
    let mut a = x.clone();
    let mut b = y.clone();
    a.remove_mean();
    b.remove_mean();
    cosine(a.samples(), b.samples()).max(0.0)
}

/// The paper's error function `E_xy(n) = [x(n) − y(n)]²` (Eq. 5) as a
/// waveform on `x`'s grid.
///
/// # Panics
///
/// Panics if the waveforms have different lengths.
pub fn error_function(x: &Waveform, y: &Waveform) -> Waveform {
    assert_eq!(x.len(), y.len(), "error function requires equal lengths");
    let samples = x
        .samples()
        .iter()
        .zip(y.samples())
        .map(|(&a, &b)| (a - b) * (a - b))
        .collect();
    Waveform::new(x.t0(), x.dt(), samples)
}

/// A local maximum of an error-function waveform that exceeds a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Sample index of the peak.
    pub index: usize,
    /// Grid time of the peak (seconds).
    pub time: f64,
    /// Peak value.
    pub value: f64,
}

/// Find local maxima of `w` whose value exceeds `threshold`.
///
/// A sample is a local maximum if it is at least as large as both neighbors
/// (endpoints compare against their single neighbor). Adjacent
/// above-threshold samples are merged into the single largest sample of the
/// run, so one physical tamper yields one [`Peak`].
pub fn find_peaks(w: &Waveform, threshold: f64) -> Vec<Peak> {
    let s = w.samples();
    let mut peaks = Vec::new();
    let mut i = 0;
    while i < s.len() {
        if s[i] <= threshold {
            i += 1;
            continue;
        }
        // Walk the contiguous above-threshold run, keep its maximum.
        let mut best = i;
        let mut j = i;
        while j < s.len() && s[j] > threshold {
            if s[j] > s[best] {
                best = j;
            }
            j += 1;
        }
        peaks.push(Peak {
            index: best,
            time: w.time_at(best),
            value: s[best],
        });
        i = j;
    }
    peaks
}

/// The first sample exceeding `threshold` — the *onset* of a discrepancy.
///
/// This is the standard TDR localization estimator: reflections from a
/// tamper at distance `d` first appear at round-trip time `2d/v`, while the
/// error may stay elevated long afterwards (step-like differences), so the
/// onset — not the maximum — marks the physical location.
pub fn first_crossing(w: &Waveform, threshold: f64) -> Option<Peak> {
    w.samples()
        .iter()
        .position(|&v| v > threshold)
        .map(|index| Peak {
            index,
            time: w.time_at(index),
            value: w[index],
        })
}

/// The largest peak above `threshold`, if any.
pub fn dominant_peak(w: &Waveform, threshold: f64) -> Option<Peak> {
    find_peaks(w, threshold)
        .into_iter()
        .max_by(|a, b| a.value.partial_cmp(&b.value).expect("NaN peak value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(samples: &[f64]) -> Waveform {
        Waveform::new(0.0, 1.0, samples.to_vec())
    }

    #[test]
    fn cosine_identical_is_one() {
        let x = [1.0, -2.0, 3.0];
        assert!((cosine(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        let x = [1.0, 2.0];
        let y = [-1.0, -2.0];
        assert!((cosine(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_energy_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn similarity_symmetric_and_clamped() {
        let x = wf(&[0.0, 1.0, 0.0, -1.0]);
        let y = wf(&[0.0, -1.0, 0.0, 1.0]);
        // Anti-correlated waveforms clamp to 0 rather than going negative.
        assert_eq!(similarity(&x, &y), 0.0);
        assert_eq!(similarity(&y, &x), similarity(&x, &y));
    }

    #[test]
    fn similarity_self_is_one() {
        let x = wf(&[0.3, -0.2, 0.8, 0.1]);
        assert!((similarity(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_ignores_dc_offset() {
        let x = wf(&[0.0, 1.0, 0.0, -1.0]);
        let y = wf(&[5.0, 6.0, 5.0, 4.0]); // same shape, large offset
        assert!((similarity(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_function_basics() {
        let x = wf(&[1.0, 2.0, 3.0]);
        let y = wf(&[1.0, 0.0, 6.0]);
        let e = error_function(&x, &y);
        assert_eq!(e.samples(), &[0.0, 4.0, 9.0]);
        assert_eq!(e.dt(), x.dt());
    }

    #[test]
    fn error_function_is_symmetric() {
        let x = wf(&[0.1, 0.9, -0.4]);
        let y = wf(&[-0.3, 0.2, 0.5]);
        assert_eq!(
            error_function(&x, &y).samples(),
            error_function(&y, &x).samples()
        );
    }

    #[test]
    fn find_peaks_merges_runs() {
        let w = wf(&[0.0, 0.5, 2.0, 3.0, 2.5, 0.0, 0.0, 4.0, 0.0]);
        let peaks = find_peaks(&w, 1.0);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].index, 3);
        assert_eq!(peaks[0].value, 3.0);
        assert_eq!(peaks[1].index, 7);
        assert_eq!(peaks[1].time, 7.0);
    }

    #[test]
    fn find_peaks_none_below_threshold() {
        let w = wf(&[0.1, 0.2, 0.1]);
        assert!(find_peaks(&w, 1.0).is_empty());
        assert!(dominant_peak(&w, 1.0).is_none());
    }

    #[test]
    fn dominant_peak_picks_largest() {
        let w = wf(&[0.0, 2.0, 0.0, 5.0, 0.0, 3.0]);
        let p = dominant_peak(&w, 1.0).unwrap();
        assert_eq!(p.index, 3);
        assert_eq!(p.value, 5.0);
    }

    #[test]
    fn first_crossing_finds_onset() {
        let w = wf(&[0.0, 0.1, 2.0, 5.0, 5.0, 5.0]);
        let p = first_crossing(&w, 1.0).unwrap();
        assert_eq!(p.index, 2);
        assert_eq!(p.value, 2.0);
        assert!(first_crossing(&w, 10.0).is_none());
    }

    #[test]
    fn peak_at_endpoints() {
        let w = wf(&[5.0, 0.0, 0.0, 6.0]);
        let peaks = find_peaks(&w, 1.0);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].index, 0);
        assert_eq!(peaks[1].index, 3);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn error_function_length_mismatch_panics() {
        let _ = error_function(&wf(&[1.0]), &wf(&[1.0, 2.0]));
    }
}
