//! A uniformly sampled waveform with interpolated sampling.
//!
//! [`Waveform`] is the lingua franca between the physics substrate (which
//! produces back-reflection responses), the analog front end (which samples
//! them at equivalent-time instants), and the iTDR (which reconstructs
//! IIPs). Samples are `f64` volts on a uniform time grid.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced by waveform operations on incompatible grids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridMismatchError {
    what: &'static str,
}

impl fmt::Display for GridMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "waveform grids are incompatible: {}", self.what)
    }
}

impl std::error::Error for GridMismatchError {}

/// A uniformly sampled real-valued waveform.
///
/// The sample at index `n` corresponds to time `t0 + n·dt`.
///
/// ```
/// use divot_dsp::Waveform;
///
/// let w = Waveform::from_fn(0.0, 1e-12, 100, |t| (1e12 * t).sin());
/// assert_eq!(w.len(), 100);
/// assert!((w.duration() - 100e-12).abs() < 1e-24);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    t0: f64,
    dt: f64,
    samples: Vec<f64>,
}

impl Waveform {
    /// Create a waveform from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or not finite.
    pub fn new(t0: f64, dt: f64, samples: Vec<f64>) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive and finite");
        Self { t0, dt, samples }
    }

    /// Create a zero waveform of `n` samples.
    pub fn zeros(t0: f64, dt: f64, n: usize) -> Self {
        Self::new(t0, dt, vec![0.0; n])
    }

    /// Create a waveform by evaluating `f` at each grid time.
    pub fn from_fn(t0: f64, dt: f64, n: usize, mut f: impl FnMut(f64) -> f64) -> Self {
        let samples = (0..n).map(|i| f(t0 + i as f64 * dt)).collect();
        Self::new(t0, dt, samples)
    }

    /// Start time of the grid.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Grid spacing (seconds per sample).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the waveform has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total covered time span `len·dt`.
    pub fn duration(&self) -> f64 {
        self.len() as f64 * self.dt
    }

    /// Immutable access to the sample buffer.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable access to the sample buffer.
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Consume the waveform, returning its sample buffer.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// The grid time of sample `n`.
    pub fn time_at(&self, n: usize) -> f64 {
        self.t0 + n as f64 * self.dt
    }

    /// Linearly interpolated value at time `t`.
    ///
    /// Times before the first sample return the first sample; times after
    /// the last return the last (constant extrapolation — physically, the
    /// settled line voltage).
    pub fn sample_at(&self, t: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let x = (t - self.t0) / self.dt;
        if x <= 0.0 {
            return self.samples[0];
        }
        let last = self.samples.len() - 1;
        if x >= last as f64 {
            return self.samples[last];
        }
        let i = x.floor() as usize;
        let frac = x - i as f64;
        self.samples[i] * (1.0 - frac) + self.samples[i + 1] * frac
    }

    /// Apply `f` to every sample in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for s in &mut self.samples {
            *s = f(*s);
        }
    }

    /// Scale all samples by `k`.
    pub fn scale(&mut self, k: f64) {
        self.map_in_place(|s| s * k);
    }

    /// Add another waveform sample-wise.
    ///
    /// # Errors
    ///
    /// Returns [`GridMismatchError`] if lengths or grid spacings differ
    /// (relative dt tolerance 1 ppm).
    pub fn try_add(&mut self, other: &Waveform) -> Result<(), GridMismatchError> {
        self.check_grid(other)?;
        for (a, b) in self.samples.iter_mut().zip(&other.samples) {
            *a += b;
        }
        Ok(())
    }

    /// Subtract another waveform sample-wise.
    ///
    /// # Errors
    ///
    /// Returns [`GridMismatchError`] if the grids are incompatible.
    pub fn try_sub(&mut self, other: &Waveform) -> Result<(), GridMismatchError> {
        self.check_grid(other)?;
        for (a, b) in self.samples.iter_mut().zip(&other.samples) {
            *a -= b;
        }
        Ok(())
    }

    fn check_grid(&self, other: &Waveform) -> Result<(), GridMismatchError> {
        if self.samples.len() != other.samples.len() {
            return Err(GridMismatchError {
                what: "different lengths",
            });
        }
        if (self.dt - other.dt).abs() > 1e-6 * self.dt {
            return Err(GridMismatchError {
                what: "different sample spacings",
            });
        }
        Ok(())
    }

    /// Sum of squared samples (discrete signal energy, up to a `dt` factor).
    pub fn energy(&self) -> f64 {
        self.samples.iter().map(|s| s * s).sum()
    }

    /// Root-mean-square of the samples. Zero for an empty waveform.
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        (self.energy() / self.samples.len() as f64).sqrt()
    }

    /// Largest absolute sample value. Zero for an empty waveform.
    pub fn peak(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |m, s| m.max(s.abs()))
    }

    /// Index of the largest absolute sample, or `None` if empty.
    pub fn peak_index(&self) -> Option<usize> {
        (0..self.samples.len()).max_by(|&a, &b| {
            self.samples[a]
                .abs()
                .partial_cmp(&self.samples[b].abs())
                .expect("samples must not be NaN")
        })
    }

    /// Arithmetic mean of the samples. Zero for an empty waveform.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Subtract the mean from every sample.
    pub fn remove_mean(&mut self) {
        let m = self.mean();
        self.map_in_place(|s| s - m);
    }

    /// Scale the waveform to unit energy. A zero waveform is left unchanged.
    pub fn normalize_energy(&mut self) {
        let e = self.energy().sqrt();
        if e > 0.0 {
            self.scale(1.0 / e);
        }
    }

    /// Resample onto a new uniform grid by linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn resampled(&self, t0: f64, dt: f64, n: usize) -> Waveform {
        Waveform::from_fn(t0, dt, n, |t| self.sample_at(t))
    }

    /// Extract the sub-waveform covering `[t_start, t_end)` (grid-aligned).
    ///
    /// Returns an empty waveform if the window misses the grid entirely.
    pub fn window(&self, t_start: f64, t_end: f64) -> Waveform {
        let i0 = (((t_start - self.t0) / self.dt).ceil().max(0.0)) as usize;
        let i1 = ((t_end - self.t0) / self.dt).ceil().max(0.0) as usize;
        let i1 = i1.min(self.samples.len());
        let i0 = i0.min(i1);
        Waveform::new(
            self.t0 + i0 as f64 * self.dt,
            self.dt,
            self.samples[i0..i1].to_vec(),
        )
    }

    /// Iterate over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.samples
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.t0 + i as f64 * self.dt, v))
    }
}

impl std::ops::Index<usize> for Waveform {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.samples[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        Waveform::from_fn(1.0, 0.5, 5, |t| t) // samples at t = 1.0..3.0
    }

    #[test]
    fn construction_and_accessors() {
        let w = ramp();
        assert_eq!(w.len(), 5);
        assert!(!w.is_empty());
        assert_eq!(w.t0(), 1.0);
        assert_eq!(w.dt(), 0.5);
        assert!((w.duration() - 2.5).abs() < 1e-15);
        assert_eq!(w.time_at(2), 2.0);
        assert_eq!(w[3], 2.5);
    }

    #[test]
    fn sample_at_interpolates() {
        let w = ramp();
        assert!((w.sample_at(1.25) - 1.25).abs() < 1e-12);
        assert!((w.sample_at(2.9) - 2.9).abs() < 1e-12);
    }

    #[test]
    fn sample_at_extrapolates_flat() {
        let w = ramp();
        assert_eq!(w.sample_at(-5.0), 1.0);
        assert_eq!(w.sample_at(100.0), 3.0);
    }

    #[test]
    fn sample_at_empty_is_zero() {
        let w = Waveform::zeros(0.0, 1.0, 0);
        assert_eq!(w.sample_at(0.5), 0.0);
        assert_eq!(w.peak_index(), None);
        assert_eq!(w.rms(), 0.0);
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    fn add_sub_round_trip() {
        let mut a = ramp();
        let b = ramp();
        a.try_add(&b).unwrap();
        assert_eq!(a[0], 2.0);
        a.try_sub(&b).unwrap();
        assert_eq!(a[0], 1.0);
    }

    #[test]
    fn grid_mismatch_is_error() {
        let mut a = ramp();
        let b = Waveform::zeros(0.0, 0.5, 4);
        assert!(a.try_add(&b).is_err());
        let c = Waveform::zeros(0.0, 0.25, 5);
        assert!(a.try_add(&c).is_err());
        let err = a.try_add(&c).unwrap_err();
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn energy_rms_peak() {
        let w = Waveform::new(0.0, 1.0, vec![3.0, -4.0]);
        assert!((w.energy() - 25.0).abs() < 1e-12);
        assert!((w.rms() - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(w.peak(), 4.0);
        assert_eq!(w.peak_index(), Some(1));
    }

    #[test]
    fn normalize_energy_unit() {
        let mut w = Waveform::new(0.0, 1.0, vec![3.0, -4.0]);
        w.normalize_energy();
        assert!((w.energy() - 1.0).abs() < 1e-12);
        // Zero waveform is untouched.
        let mut z = Waveform::zeros(0.0, 1.0, 4);
        z.normalize_energy();
        assert_eq!(z.energy(), 0.0);
    }

    #[test]
    fn remove_mean_centers() {
        let mut w = Waveform::new(0.0, 1.0, vec![1.0, 2.0, 3.0]);
        w.remove_mean();
        assert!(w.mean().abs() < 1e-15);
    }

    #[test]
    fn resample_preserves_linear_signal() {
        let w = ramp();
        let r = w.resampled(1.0, 0.1, 21);
        for (t, v) in r.iter() {
            assert!((v - t).abs() < 1e-12);
        }
    }

    #[test]
    fn window_extracts_range() {
        let w = Waveform::from_fn(0.0, 1.0, 10, |t| t);
        let win = w.window(2.5, 6.0);
        assert_eq!(win.len(), 3); // samples at t = 3, 4, 5
        assert_eq!(win.t0(), 3.0);
        assert_eq!(win.samples(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn window_out_of_range_is_empty() {
        let w = ramp();
        assert!(w.window(100.0, 200.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn rejects_bad_dt() {
        let _ = Waveform::zeros(0.0, 0.0, 3);
    }
}
