//! Minimal order-preserving data parallelism on `std::thread::scope`.
//!
//! The acquisition loops in `divot-core` fan independent work items
//! (ETS points, averaging repeats, lanes, ROC trials) across CPU cores.
//! No external thread-pool crate is available offline, so this module
//! provides the two primitives those loops need, built directly on scoped
//! threads:
//!
//! * [`par_map_indexed`] — compute `f(0..n)` with dynamic (work-stealing)
//!   scheduling, returning results in index order;
//! * [`par_map_mut`] / [`par_zip_mut`] — run a closure over disjoint
//!   mutable items (channels, lanes) with static chunking.
//!
//! **Determinism contract**: these helpers only schedule; they never
//! change *what* is computed. As long as `f(i)` depends only on `i` and
//! shared read-only state (no shared RNG, no observable global mutation),
//! the returned vector is bitwise identical to the serial loop
//! `(0..n).map(f).collect()` — the property the
//! `parallel_equivalence` integration test pins down.
//!
//! Worker count comes from [`max_threads`]: the `DIVOT_THREADS`
//! environment variable when set, else [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// Record one fan-out in the process-wide telemetry (no-op when none is
/// installed): `par.fanouts` / `par.items` counters plus the
/// `par.workers` gauge. Called once per fan-out, never per item, so the
/// registry lookup stays off the hot path.
fn note_fanout(items: usize, workers: usize) {
    if let Some(t) = divot_telemetry::global() {
        let r = t.registry();
        r.counter("par.fanouts").inc();
        r.counter("par.items").add(items as u64);
        r.gauge("par.workers").set(workers as f64);
    }
}

/// Number of worker threads parallel helpers may use: `DIVOT_THREADS` if
/// set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
pub fn max_threads() -> usize {
    match std::env::var("DIVOT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Compute `f(i)` for every `i in 0..n` across worker threads and return
/// the results in index order.
///
/// Scheduling is dynamic (an atomic work counter), so unevenly sized items
/// balance automatically; the output order is index order regardless of
/// which worker computed what.
///
/// Falls back to the plain serial loop when `n <= 1` or only one thread is
/// available.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = max_threads().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    note_fanout(n, workers);
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for chunk in &mut per_worker {
        for (i, v) in chunk.drain(..) {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index computed exactly once"))
        .collect()
}

/// Run `f(index, &mut item)` over every item of a mutable slice across
/// worker threads (static chunking), returning the results in item order.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map_mut<A, T, F>(items: &mut [A], f: F) -> Vec<T>
where
    A: Send,
    T: Send,
    F: Fn(usize, &mut A) -> T + Sync,
{
    let n = items.len();
    let workers = max_threads().min(n.max(1));
    if workers <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, a)| f(i, a))
            .collect();
    }
    note_fanout(n, workers);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, slice)| {
                let f = &f;
                scope.spawn(move || {
                    slice
                        .iter_mut()
                        .enumerate()
                        .map(|(j, a)| f(c * chunk + j, a))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Run `f(index, &mut a, &mut b)` over two equal-length mutable slices in
/// lock step across worker threads, returning the results in item order.
///
/// # Panics
///
/// Panics if the slices differ in length; propagates a panic from `f`.
pub fn par_zip_mut<A, B, T, F>(a: &mut [A], b: &mut [B], f: F) -> Vec<T>
where
    A: Send,
    B: Send,
    T: Send,
    F: Fn(usize, &mut A, &mut B) -> T + Sync,
{
    assert_eq!(a.len(), b.len(), "zipped slices must match in length");
    let n = a.len();
    let workers = max_threads().min(n.max(1));
    if workers <= 1 {
        return a
            .iter_mut()
            .zip(b.iter_mut())
            .enumerate()
            .map(|(i, (x, y))| f(i, x, y))
            .collect();
    }
    note_fanout(n, workers);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = a
            .chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .enumerate()
            .map(|(c, (sa, sb))| {
                let f = &f;
                scope.spawn(move || {
                    sa.iter_mut()
                        .zip(sb.iter_mut())
                        .enumerate()
                        .map(|(j, (x, y))| f(c * chunk + j, x, y))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_map_preserves_order() {
        let out = par_map_indexed(1000, |i| i * i);
        assert_eq!(out, (0..1000).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_map_matches_serial_bitwise() {
        // Per-index derived RNG: the contract the acquisition engine
        // relies on.
        let work = |i: usize| {
            let mut rng = crate::rng::DivotRng::derive(99, i as u64);
            (0..50).map(|_| rng.normal(0.0, 1.0)).sum::<f64>()
        };
        let serial: Vec<f64> = (0..64).map(work).collect();
        let parallel = par_map_indexed(64, work);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn empty_and_single_items() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
        let mut empty: [u8; 0] = [];
        assert_eq!(par_map_mut(&mut empty, |_, _| 0u8), Vec::<u8>::new());
    }

    #[test]
    fn map_mut_mutates_every_item_in_order() {
        let mut items: Vec<u64> = (0..97).collect();
        let out = par_map_mut(&mut items, |i, v| {
            *v += 1;
            *v * i as u64
        });
        assert_eq!(items, (1..98).collect::<Vec<u64>>());
        assert_eq!(out, (0..97).map(|i| (i + 1) * i).collect::<Vec<u64>>());
    }

    #[test]
    fn zip_mut_pairs_by_index() {
        let mut a: Vec<u32> = (0..33).collect();
        let mut b: Vec<u32> = (0..33).map(|i| 100 + i).collect();
        let out = par_zip_mut(&mut a, &mut b, |i, x, y| {
            *x += *y;
            *x as usize + i
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 100 + 2 * i + i);
        }
    }

    #[test]
    #[should_panic(expected = "zipped slices must match")]
    fn zip_rejects_length_mismatch() {
        let mut a = [1u8; 3];
        let mut b = [1u8; 4];
        let _ = par_zip_mut(&mut a, &mut b, |_, _, _| ());
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
