//! Math, statistics, and signal-processing substrate for the DIVOT
//! architecture simulation.
//!
//! This crate provides the numeric foundation that every other layer of the
//! reproduction builds on:
//!
//! * [`erf`] — error function, complementary error function, and the probit
//!   (inverse normal CDF), implemented from scratch so no external special-
//!   function crate is needed.
//! * [`gaussian`] — Gaussian PDF/CDF/inverse-CDF, plus the *modulated* CDFs
//!   at the heart of analog-to-probability conversion (APC) with probability
//!   density modulation (PDM): the closed-form Gaussian–uniform mixture CDF
//!   and discrete reference-level mixtures, both invertible.
//! * [`rng`] — deterministic seeded randomness: a polar Box–Muller normal
//!   sampler, an exact binomial sampler (inverse-CDF / transformed
//!   rejection) backing the analytic acquisition fast path, and an
//!   Ornstein–Uhlenbeck process used to synthesize spatially correlated
//!   manufacturing variation (the IIP itself).
//! * [`quadrature`] — fixed-node Gauss–Hermite rules for Gaussian
//!   expectations; folds PLL trigger jitter into closed-form trip
//!   probabilities without Monte-Carlo draws.
//! * [`par`] — order-preserving parallel map helpers on scoped threads;
//!   the scheduling substrate for the acquisition fan-out in `divot-core`
//!   (bitwise identical to the serial loop for per-index-seeded work).
//! * [`waveform`] — a uniformly sampled waveform type with interpolated
//!   sampling and the arithmetic used throughout the scattering simulation.
//! * [`stats`] — moments, histograms, percentiles.
//! * [`similarity`] — the paper's similarity function `S_xy` (Eq. 4) and
//!   error function `E_xy` (Eq. 5), plus peak extraction for tamper
//!   localization.
//! * [`roc`] — receiver operating characteristic curves, equal error rate
//!   (EER), and AUC, used to regenerate Fig. 7(b).
//! * [`filter`] — smoothing filters for reconstructed IIPs.
//!
//! # Example
//!
//! ```
//! use divot_dsp::gaussian;
//!
//! // APC: probability of comparator output 1 for a signal 1σ above the
//! // reference, then recover the voltage from the probability.
//! let p = gaussian::std_cdf(1.0);
//! let v = gaussian::std_cdf_inv(p);
//! assert!((v - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod erf;
pub mod fft;
pub mod filter;
pub mod gaussian;
pub mod par;
pub mod quadrature;
pub mod roc;
pub mod rng;
pub mod similarity;
pub mod stats;
pub mod waveform;

pub use roc::{auc, RocCurve, RocPoint};
pub use rng::{DivotRng, OrnsteinUhlenbeck};
pub use stats::{Histogram, Summary};
pub use waveform::Waveform;
