//! Deterministic randomness for reproducible experiments.
//!
//! Every stochastic object in the DIVOT simulation (fabrication variation,
//! comparator noise, PLL jitter, workload generation, attack parameters)
//! draws from a [`DivotRng`] seeded explicitly, so every experiment in
//! `EXPERIMENTS.md` is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mix a 64-bit seed through SplitMix64 — used to derive independent
/// sub-seeds from one experiment seed without correlation.
///
/// ```
/// let a = divot_dsp::rng::mix_seed(42, 0);
/// let b = divot_dsp::rng::mix_seed(42, 1);
/// assert_ne!(a, b);
/// ```
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random source with the distributions the simulation needs.
///
/// Wraps [`rand::rngs::StdRng`] and adds a polar Box–Muller standard-normal
/// sampler (with spare caching), so no external distribution crate is
/// required.
#[derive(Debug, Clone)]
pub struct DivotRng {
    inner: StdRng,
    spare_normal: Option<f64>,
}

impl DivotRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derive an independent child generator for stream `stream`.
    ///
    /// Children derived with different stream ids from the same parent seed
    /// are statistically independent (SplitMix64 mixing).
    pub fn derive(seed: u64, stream: u64) -> Self {
        Self::seed_from_u64(mix_seed(seed, stream))
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty interval [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.random_range(0..n)
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.inner.random::<bool>()
    }

    /// Bernoulli sample with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        self.uniform() < p
    }

    /// Standard normal sample via the polar (Marsaglia) method.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * f);
                return u * f;
            }
        }
    }

    /// Normal sample with the given mean and sigma.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        mean + sigma * self.standard_normal()
    }

    /// Fill `out` with i.i.d. `N(0, sigma²)` samples.
    pub fn fill_normal(&mut self, out: &mut [f64], sigma: f64) {
        for v in out {
            *v = self.normal(0.0, sigma);
        }
    }

    /// Exact `Binomial(n, p)` sample — the number of successes in `n`
    /// independent trials of probability `p`.
    ///
    /// This is what lets the analytic acquisition path replace `n`
    /// comparator-trial simulations with a single draw: inverse-CDF
    /// search for small means, a BTPE-style squeeze/rejection sampler
    /// (Hörmann's transformed rejection) for large ones. Both branches
    /// are exact — the output distribution is the true binomial, not an
    /// approximation — and consume only this generator's stream, so the
    /// draw is reproducible from the seed.
    ///
    /// Degenerate probabilities (`p == 0`, `p == 1`) return without
    /// consuming any randomness.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        // Work on q = min(p, 1−p) and mirror the result back.
        let (q, flipped) = if p > 0.5 { (1.0 - p, true) } else { (p, false) };
        let k = if n as f64 * q < BINOMIAL_INV_THRESHOLD {
            self.binomial_inverse(n, q)
        } else {
            self.binomial_btpe(n, q)
        };
        if flipped {
            n - k
        } else {
            k
        }
    }

    /// Inverse-CDF search: walk the pmf recurrence
    /// `P(k+1) = P(k)·(n−k)/(k+1)·q/(1−q)` until the cumulative mass
    /// passes a uniform draw. Exact; O(n·q) expected steps. Requires
    /// `q ≤ 0.5` and a small mean so `(1−q)^n` stays well above the
    /// underflow floor.
    fn binomial_inverse(&mut self, n: u64, q: f64) -> u64 {
        let s = q / (1.0 - q);
        let mut pmf = ((n as f64) * (1.0 - q).ln()).exp();
        let mut cdf = pmf;
        let u = self.uniform();
        let mut k = 0u64;
        while cdf < u && k < n {
            pmf *= s * (n - k) as f64 / (k + 1) as f64;
            cdf += pmf;
            k += 1;
        }
        k
    }

    /// Transformed-rejection binomial sampler (Hörmann 1993, the BTRS
    /// variant of the BTPE squeeze family). Exact for `n·q ≥ 10`,
    /// `q ≤ 0.5`; expected a small constant number of `(u, v)` pairs per
    /// draw regardless of `n`.
    fn binomial_btpe(&mut self, n: u64, q: f64) -> u64 {
        let nf = n as f64;
        let stddev = (nf * q * (1.0 - q)).sqrt();
        let b = 1.15 + 2.53 * stddev;
        let a = -0.0873 + 0.0248 * b + 0.01 * q;
        let c = nf * q + 0.5;
        let v_r = 0.92 - 4.2 / b;
        let r = q / (1.0 - q);
        let alpha = (2.83 + 5.1 / b) * stddev;
        let m = ((nf + 1.0) * q).floor();
        loop {
            let u = self.uniform() - 0.5;
            let v = self.uniform();
            let us = 0.5 - u.abs();
            let kf = ((2.0 * a / us + b) * u + c).floor();
            if kf < 0.0 || kf > nf {
                continue;
            }
            // Squeeze: accept the bulk without evaluating the pmf.
            if us >= 0.07 && v <= v_r {
                return kf as u64;
            }
            // Exact acceptance test against the log-pmf ratio to the mode.
            let vt = (v * alpha / (a / (us * us) + b)).ln();
            let upper = (m + 0.5) * ((m + 1.0) / (r * (nf - m + 1.0))).ln()
                + (nf + 1.0) * ((nf - m + 1.0) / (nf - kf + 1.0)).ln()
                + (kf + 0.5) * (r * (nf - kf + 1.0) / (kf + 1.0)).ln()
                + stirling_tail(m)
                + stirling_tail(nf - m)
                - stirling_tail(kf)
                - stirling_tail(nf - kf);
            if vt <= upper {
                return kf as u64;
            }
        }
    }
}

/// Mean threshold below which [`DivotRng::binomial`] uses inverse-CDF
/// search instead of the rejection sampler.
const BINOMIAL_INV_THRESHOLD: f64 = 10.0;

/// The Stirling-series tail `ln(k!) − [k·ln k − k + ½·ln(2πk)]`, tabulated
/// exactly for small `k` (where the series is weakest) and by the
/// three-term series elsewhere — the correction the rejection sampler's
/// acceptance bound needs.
fn stirling_tail(k: f64) -> f64 {
    const TABLE: [f64; 10] = [
        0.081_061_466_795_327_81,
        0.041_340_695_955_409_46,
        0.027_677_925_684_998_34,
        0.020_790_672_103_765_09,
        0.016_644_691_189_821_19,
        0.013_876_128_823_070_747,
        0.011_896_709_945_891_8,
        0.010_411_265_261_972_096,
        0.009_255_462_182_712_732,
        0.008_330_563_433_362_87,
    ];
    if k < 10.0 {
        return TABLE[k as usize];
    }
    let kk = (k + 1.0) * (k + 1.0);
    (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / (1260.0 * kk)) / kk) / (k + 1.0)
}

/// A stationary Ornstein–Uhlenbeck (exponentially correlated Gaussian)
/// process, sampled on a uniform grid.
///
/// This is the spatial model for manufacturing variation along a Tx-line:
/// impedance deviations at nearby positions are correlated over a
/// *correlation length* (trace-width-scale geometry variation, resin-pool
/// scale dielectric variation), but decorrelate over longer distances. The
/// exact discrete update for grid step `dx` and correlation length `ell` is
///
/// ```text
/// x[k+1] = ρ·x[k] + σ·√(1−ρ²)·N(0,1),   ρ = exp(−dx/ell)
/// ```
///
/// which keeps the process stationary with marginal `N(0, σ²)` at every
/// sample — so the IIP "contrast" statistics don't depend on line length.
#[derive(Debug, Clone)]
pub struct OrnsteinUhlenbeck {
    sigma: f64,
    rho: f64,
    state: f64,
    rng: DivotRng,
}

/// The deterministic shape of a stationary OU process — everything
/// [`OrnsteinUhlenbeck::new`] computes before touching the RNG (notably
/// the `exp` for the one-step autocorrelation). Computing the shape once
/// and instantiating many processes from it via
/// [`OrnsteinUhlenbeck::with_coeffs`] is bitwise identical to calling
/// `new` each time, since the shape consumes no randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OuCoeffs {
    sigma: f64,
    rho: f64,
}

impl OuCoeffs {
    /// Precompute the OU shape for `(sigma, correlation_length, step)`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(sigma: f64, correlation_length: f64, step: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        assert!(
            correlation_length > 0.0,
            "correlation_length must be positive, got {correlation_length}"
        );
        assert!(step > 0.0, "step must be positive, got {step}");
        let rho = (-step / correlation_length).exp();
        Self { sigma, rho }
    }

    /// The marginal standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The one-step autocorrelation `ρ = exp(−step/ell)`.
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

impl OrnsteinUhlenbeck {
    /// Create a stationary OU process.
    ///
    /// * `sigma` — marginal standard deviation of each sample.
    /// * `correlation_length` — e-folding distance of the autocorrelation,
    ///   in the same unit as `step`.
    /// * `step` — grid spacing.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(sigma: f64, correlation_length: f64, step: f64, rng: DivotRng) -> Self {
        Self::with_coeffs(OuCoeffs::new(sigma, correlation_length, step), rng)
    }

    /// Create a stationary OU process from a precomputed shape (see
    /// [`OuCoeffs`]); bitwise identical to [`new`](Self::new) with the
    /// parameters the shape was built from.
    pub fn with_coeffs(coeffs: OuCoeffs, mut rng: DivotRng) -> Self {
        // Start in the stationary distribution.
        let state = rng.normal(0.0, coeffs.sigma);
        Self {
            sigma: coeffs.sigma,
            rho: coeffs.rho,
            state,
            rng,
        }
    }

    /// The one-step autocorrelation `ρ = exp(−step/ell)`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Draw the next sample of the process.
    pub fn next_sample(&mut self) -> f64 {
        let innovation = self.sigma * (1.0 - self.rho * self.rho).sqrt();
        self.state = self.rho * self.state + self.rng.normal(0.0, innovation);
        self.state
    }

    /// Generate `n` consecutive samples.
    pub fn take_samples(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = DivotRng::seed_from_u64(7);
        let mut b = DivotRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
            assert_eq!(a.standard_normal().to_bits(), b.standard_normal().to_bits());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = DivotRng::derive(7, 0);
        let mut b = DivotRng::derive(7, 1);
        let same = (0..64).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments() {
        let mut rng = DivotRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..200_000).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = stats::mean(&xs);
        let sd = stats::std_dev(&xs);
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
        assert!((sd - 3.0).abs() < 0.05, "sd={sd}");
    }

    #[test]
    fn normal_tail_fraction() {
        // ~2.28% of standard normal mass lies above 2.
        let mut rng = DivotRng::seed_from_u64(13);
        let n = 200_000;
        let above = (0..n).filter(|_| rng.standard_normal() > 2.0).count();
        let frac = above as f64 / n as f64;
        assert!((frac - 0.0228).abs() < 0.003, "frac={frac}");
    }

    #[test]
    fn uniform_in_bounds() {
        let mut rng = DivotRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.uniform_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = DivotRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        assert!(((hits as f64 / n as f64) - 0.3).abs() < 0.01);
    }

    #[test]
    fn ou_is_stationary() {
        let rng = DivotRng::seed_from_u64(17);
        let mut ou = OrnsteinUhlenbeck::new(0.5, 10.0, 1.0, rng);
        let xs = ou.take_samples(100_000);
        let sd = stats::std_dev(&xs);
        assert!((sd - 0.5).abs() < 0.02, "sd={sd}");
        assert!(stats::mean(&xs).abs() < 0.05);
    }

    #[test]
    fn ou_autocorrelation_matches_rho() {
        let rng = DivotRng::seed_from_u64(19);
        let mut ou = OrnsteinUhlenbeck::new(1.0, 5.0, 1.0, rng);
        let xs = ou.take_samples(200_000);
        let mean = stats::mean(&xs);
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..xs.len() - 1 {
            num += (xs[i] - mean) * (xs[i + 1] - mean);
            den += (xs[i] - mean) * (xs[i] - mean);
        }
        let r1 = num / den;
        let want = (-1.0f64 / 5.0).exp();
        assert!((r1 - want).abs() < 0.01, "r1={r1} want={want}");
    }

    #[test]
    fn ou_short_correlation_is_nearly_white() {
        let rng = DivotRng::seed_from_u64(23);
        let mut ou = OrnsteinUhlenbeck::new(1.0, 0.01, 1.0, rng);
        let xs = ou.take_samples(50_000);
        let mean = stats::mean(&xs);
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..xs.len() - 1 {
            num += (xs[i] - mean) * (xs[i + 1] - mean);
            den += (xs[i] - mean) * (xs[i] - mean);
        }
        assert!((num / den).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn uniform_in_rejects_empty() {
        DivotRng::seed_from_u64(0).uniform_in(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn bernoulli_rejects_bad_p() {
        DivotRng::seed_from_u64(0).bernoulli(1.5);
    }

    #[test]
    fn binomial_degenerate_cases() {
        let mut rng = DivotRng::seed_from_u64(1);
        assert_eq!(rng.binomial(0, 0.3), 0);
        assert_eq!(rng.binomial(100, 0.0), 0);
        assert_eq!(rng.binomial(100, 1.0), 100);
        // Degenerate draws consume no randomness: the stream position is
        // unchanged relative to a fresh generator.
        let mut fresh = DivotRng::seed_from_u64(1);
        assert_eq!(rng.uniform(), fresh.uniform());
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn binomial_rejects_bad_p() {
        DivotRng::seed_from_u64(0).binomial(10, -0.1);
    }

    #[test]
    fn binomial_is_deterministic_per_seed() {
        for &(n, p) in &[(7u64, 0.2), (420, 0.03), (420, 0.5), (100_000, 0.37)] {
            let a = DivotRng::seed_from_u64(99).binomial(n, p);
            let b = DivotRng::seed_from_u64(99).binomial(n, p);
            assert_eq!(a, b, "n={n} p={p}");
            assert!(a <= n);
        }
    }

    #[test]
    fn binomial_matches_mean_and_variance() {
        // Exercise both branches (inverse-CDF: n·q < 10; rejection: ≥ 10)
        // and the p > 0.5 mirror.
        for &(n, p) in &[(40u64, 0.05), (420, 0.5), (420, 0.97), (5_000, 0.12)] {
            let mut rng = DivotRng::seed_from_u64(0xB1_707 ^ n);
            let draws = 20_000;
            let xs: Vec<f64> = (0..draws).map(|_| rng.binomial(n, p) as f64).collect();
            let mean = stats::mean(&xs);
            let var = {
                let sd = stats::std_dev(&xs);
                sd * sd
            };
            let want_mean = n as f64 * p;
            let want_var = n as f64 * p * (1.0 - p);
            let mean_tol = 5.0 * (want_var / draws as f64).sqrt();
            assert!(
                (mean - want_mean).abs() < mean_tol,
                "n={n} p={p}: mean {mean} vs {want_mean}"
            );
            assert!(
                (var - want_var).abs() < 0.1 * want_var + 1.0,
                "n={n} p={p}: var {var} vs {want_var}"
            );
        }
    }

    #[test]
    fn binomial_small_n_matches_exact_pmf() {
        // Chi-squared-style check of the full pmf on a small case that the
        // inverse-CDF branch serves.
        let (n, p) = (8u64, 0.3);
        let mut rng = DivotRng::seed_from_u64(31);
        let draws = 50_000usize;
        let mut counts = vec![0usize; n as usize + 1];
        for _ in 0..draws {
            counts[rng.binomial(n, p) as usize] += 1;
        }
        for k in 0..=n {
            let mut pmf = (1.0 - p).powi(n as i32);
            for j in 0..k {
                pmf *= p / (1.0 - p) * (n - j) as f64 / (j + 1) as f64;
            }
            let got = counts[k as usize] as f64 / draws as f64;
            let tol = 4.0 * (pmf * (1.0 - pmf) / draws as f64).sqrt() + 1e-4;
            assert!((got - pmf).abs() < tol, "k={k}: {got} vs {pmf}");
        }
    }

    #[test]
    fn stirling_tail_matches_log_factorial() {
        // tail(k) = ln k! − [(k+½)ln(k+1) − (k+1) + ½ln(2π)]; verify the
        // series branch against a direct sum of logs.
        for k in [10u64, 25, 100, 1000] {
            let lnfact: f64 = (1..=k).map(|j| (j as f64).ln()).sum();
            let kf = k as f64;
            let stirling = (kf + 0.5) * (kf + 1.0).ln() - (kf + 1.0)
                + 0.5 * (2.0 * std::f64::consts::PI).ln();
            let want = lnfact - stirling;
            let got = super::stirling_tail(kf);
            assert!((got - want).abs() < 1e-9, "k={k}: {got} vs {want}");
        }
    }
}
