//! Error function, complementary error function, and probit.
//!
//! Implemented from scratch (no external special-function crate):
//!
//! * [`erf`]/[`erfc`] use W. J. Cody's rational Chebyshev approximations
//!   (the same scheme used by most libm implementations), accurate to about
//!   1 part in 10¹⁵ over the whole real line, with a scaled variant in the
//!   far tail so `erfc` does not underflow prematurely.
//! * [`probit`] (the inverse of the standard normal CDF) uses Acklam's
//!   rational approximation refined by one Halley iteration, giving close to
//!   full double precision.

// The coefficient tables are quoted at the published precision; rounding
// them to representable digits would obscure their provenance.
#![allow(clippy::excessive_precision)]

/// Coefficients for |x| <= 0.46875 (Cody region 1).
const ERF_P: [f64; 5] = [
    3.209377589138469472562e3,
    3.774852376853020208137e2,
    1.138641541510501556495e2,
    3.161123743870565596947e0,
    1.857777061846031526730e-1,
];
const ERF_Q: [f64; 4] = [
    2.844236833439170622273e3,
    1.282616526077372275645e3,
    2.440246379344441733056e2,
    2.360129095234412093499e1,
];

/// Coefficients for 0.46875 < |x| <= 4.0 (Cody region 2, computes erfc).
const ERFC_P: [f64; 9] = [
    1.23033935479799725272e3,
    2.05107837782607146532e3,
    1.71204761263407058314e3,
    8.81952221241769090411e2,
    2.98635138197400131132e2,
    6.61191906371416294775e1,
    8.88314979438837594118e0,
    5.64188496988670089180e-1,
    2.15311535474403846343e-8,
];
const ERFC_Q: [f64; 9] = [
    1.23033935480374942043e3,
    3.43936767414372163696e3,
    4.36261909014324715820e3,
    3.29079923573345962678e3,
    1.62138957456669018874e3,
    5.37181101862009857509e2,
    1.17693950891312499305e2,
    1.57449261107098347253e1,
    1.0,
];

/// Coefficients for |x| > 4.0 (Cody region 3, asymptotic erfc).
const ERFC_R: [f64; 6] = [
    -6.58749161529837803157e-4,
    -1.60837851487422766278e-2,
    -1.25781726111229246204e-1,
    -3.60344899949804439429e-1,
    -3.05326634961232344035e-1,
    -1.63153871373020978498e-2,
];
const ERFC_S: [f64; 6] = [
    2.33520497626869185443e-3,
    6.05183413124413191178e-2,
    5.27905102951428412248e-1,
    1.87295284992346047209e0,
    2.56852019228982242072e0,
    1.0,
];

const ONE_OVER_SQRT_PI: f64 = 0.564189583547756286948;

fn erf_small(x: f64) -> f64 {
    // Region 1: rational approximation for erf directly.
    let z = x * x;
    let mut num = ERF_P[4] * z;
    let mut den = z;
    for i in (1..4).rev() {
        num = (num + ERF_P[i]) * z;
        den = (den + ERF_Q[i]) * z;
    }
    x * (num + ERF_P[0]) / (den + ERF_Q[0])
}

fn erfc_mid(ax: f64) -> f64 {
    // Region 2: erfc(ax) for 0.46875 < ax <= 4.0.
    let mut num = ERFC_P[8] * ax;
    let mut den = ax;
    for i in (1..8).rev() {
        num = (num + ERFC_P[i]) * ax;
        den = (den + ERFC_Q[i]) * ax;
    }
    let r = (num + ERFC_P[0]) / (den + ERFC_Q[0]);
    // exp(-x^2) computed with the split trick for accuracy.
    let xsq = (ax * 16.0).trunc() / 16.0;
    let del = (ax - xsq) * (ax + xsq);
    (-xsq * xsq).exp() * (-del).exp() * r
}

fn erfc_large(ax: f64) -> f64 {
    // Region 3: asymptotic expansion for ax > 4.0.
    if ax >= 26.7 {
        return 0.0; // underflows double precision
    }
    let z = 1.0 / (ax * ax);
    let mut num = ERFC_R[5] * z;
    let mut den = z;
    for i in (1..5).rev() {
        num = (num + ERFC_R[i]) * z;
        den = (den + ERFC_S[i]) * z;
    }
    let r = z * (num + ERFC_R[0]) / (den + ERFC_S[0]);
    let r = (ONE_OVER_SQRT_PI + r) / ax;
    let xsq = (ax * 16.0).trunc() / 16.0;
    let del = (ax - xsq) * (ax + xsq);
    (-xsq * xsq).exp() * (-del).exp() * r
}

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Accurate to roughly machine precision over the whole real line.
///
/// ```
/// assert!((divot_dsp::erf::erf(0.0)).abs() < 1e-15);
/// assert!((divot_dsp::erf::erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax <= 0.46875 {
        erf_small(x)
    } else {
        let e = erfc(ax);
        let v = 1.0 - e;
        if x < 0.0 {
            -v
        } else {
            v
        }
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Remains accurate (relative error) deep into the positive tail, which
/// matters for the tiny false-positive rates the DIVOT evaluation reports.
///
/// ```
/// assert!((divot_dsp::erf::erfc(0.0) - 1.0).abs() < 1e-15);
/// // Deep tail stays in relative precision rather than flushing to 0.
/// assert!(divot_dsp::erf::erfc(6.0) > 0.0);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    let v = if ax <= 0.46875 {
        return 1.0 - erf_small(x);
    } else if ax <= 4.0 {
        erfc_mid(ax)
    } else {
        erfc_large(ax)
    };
    if x < 0.0 {
        2.0 - v
    } else {
        v
    }
}

/// Acklam's rational approximation for the inverse standard normal CDF.
fn probit_acklam(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The probit function: inverse of the standard normal CDF.
///
/// `probit(Φ(x)) == x` to near machine precision. Returns `-INFINITY` for
/// `p == 0`, `INFINITY` for `p == 1`, and `NaN` outside `[0, 1]`.
///
/// ```
/// let x = divot_dsp::erf::probit(0.975);
/// assert!((x - 1.959963984540054).abs() < 1e-10);
/// ```
pub fn probit(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    let x = probit_acklam(p);
    // One Halley refinement against the true CDF (via erfc for tail accuracy).
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables / mpmath.
        let cases = [
            (0.0, 0.0),
            (0.1, 0.1124629160182849),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
            (-1.0, -0.8427007929497149),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-12,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erfc_reference_values() {
        let cases = [
            (0.5, 0.4795001221869535),
            (1.0, 0.15729920705028513),
            (2.0, 0.004677734981063127),
            (4.0, 1.541725790028002e-8),
            (6.0, 2.1519736712498913e-17),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                ((got - want) / want).abs() < 1e-10,
                "erfc({x}) = {got} want {want}"
            );
        }
    }

    #[test]
    fn erfc_negative_axis() {
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-14);
        assert!((erfc(-3.0) - 1.9999779095030015).abs() < 1e-12);
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for i in -40..=40 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x={x}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for i in 1..=50 {
            let x = i as f64 * 0.07;
            assert!((erf(x) + erf(-x)).abs() < 1e-15);
        }
    }

    #[test]
    fn probit_reference_values() {
        let cases = [
            (0.5, 0.0),
            (0.8413447460685429, 1.0),
            (0.9772498680518208, 2.0),
            (0.0013498980316300933, -3.0),
            (0.975, 1.959963984540054),
        ];
        for (p, want) in cases {
            assert!(
                (probit(p) - want).abs() < 1e-9,
                "probit({p}) = {} want {want}",
                probit(p)
            );
        }
    }

    #[test]
    fn probit_round_trip() {
        for i in -45..=45 {
            let x = i as f64 * 0.1;
            let p = 0.5 * erfc(-x / std::f64::consts::SQRT_2);
            assert!((probit(p) - x).abs() < 1e-8, "x={x}");
        }
    }

    #[test]
    fn probit_edges() {
        assert_eq!(probit(0.0), f64::NEG_INFINITY);
        assert_eq!(probit(1.0), f64::INFINITY);
        assert!(probit(-0.1).is_nan());
        assert!(probit(1.1).is_nan());
        assert!(probit(f64::NAN).is_nan());
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }

    #[test]
    fn erf_monotone() {
        let mut prev = erf(-5.0);
        for i in -49..=50 {
            let v = erf(i as f64 * 0.1);
            assert!(v >= prev);
            prev = v;
        }
    }
}
