//! Fixed-node Gauss–Hermite quadrature for Gaussian expectations.
//!
//! The analytic acquisition path needs `E[f(T)]` for `T ~ N(μ, σ²)` — the
//! comparator trip probability averaged over the PLL's sampling-instant
//! jitter. Gauss–Hermite quadrature evaluates that expectation with a
//! handful of deterministic nodes instead of hundreds of Monte-Carlo
//! draws:
//!
//! ```text
//! ∫ e^{−x²} f(x) dx ≈ Σ wᵢ f(xᵢ)
//! E[f(T)] = (1/√π) Σ wᵢ f(μ + √2·σ·xᵢ)
//! ```
//!
//! Nodes and weights are computed once per rule (Newton iteration on the
//! orthonormal Hermite recurrence — no tables, no external deps) and are a
//! pure function of the order, so every expectation evaluated through a
//! rule is bitwise deterministic.

use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// A fixed-order Gauss–Hermite rule (weight function `e^{−x²}`).
#[derive(Debug, Clone, PartialEq)]
pub struct GaussHermite {
    /// Quadrature nodes `xᵢ` (ascending).
    nodes: Vec<f64>,
    /// Weights `wᵢ` for `∫ e^{−x²} f(x) dx`, pre-divided by `√π` so they
    /// sum to 1 and weight Gaussian expectations directly.
    weights: Vec<f64>,
}

impl GaussHermite {
    /// Construct the rule of the given order (number of nodes).
    ///
    /// An order-`n` rule integrates polynomials of degree `2n−1` exactly;
    /// single-digit orders already resolve any signal that is smooth on
    /// the jitter scale.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn new(order: usize) -> Self {
        assert!(order > 0, "quadrature order must be positive");
        let n = order;
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        // Newton iteration on the orthonormal Hermite recurrence,
        // largest root inward (Numerical Recipes `gauher` scheme); the
        // lower half follows by symmetry.
        let m = n.div_ceil(2);
        let mut z = 0.0f64;
        for i in 0..m {
            z = match i {
                0 => (2.0 * n as f64 + 1.0).sqrt()
                    - 1.85575 * (2.0 * n as f64 + 1.0).powf(-1.0 / 6.0),
                1 => z - 1.14 * (n as f64).powf(0.426) / z,
                2 => 1.86 * z - 0.86 * nodes[n - 1],
                3 => 1.91 * z - 0.91 * nodes[n - 2],
                _ => 2.0 * z - nodes[n - i + 1],
            };
            let mut pp = 0.0;
            for _ in 0..100 {
                // Orthonormal Hermite values at z: p1 = H̃_n(z), p2 = H̃_{n−1}(z).
                let mut p1 = PI.powf(-0.25);
                let mut p2 = 0.0;
                for j in 1..=n {
                    let p3 = p2;
                    p2 = p1;
                    p1 = z * (2.0 / j as f64).sqrt() * p2
                        - ((j as f64 - 1.0) / j as f64).sqrt() * p3;
                }
                pp = (2.0 * n as f64).sqrt() * p2;
                let dz = p1 / pp;
                z -= dz;
                if dz.abs() < 1e-15 * (1.0 + z.abs()) {
                    break;
                }
            }
            nodes[n - 1 - i] = z;
            nodes[i] = -z;
            let w = 2.0 / (pp * pp);
            weights[n - 1 - i] = w;
            weights[i] = w;
        }
        if n % 2 == 1 {
            // The middle node of an odd rule is exactly 0.
            nodes[n / 2] = 0.0;
        }
        let norm: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= norm;
        }
        Self { nodes, weights }
    }

    /// Number of nodes.
    pub fn order(&self) -> usize {
        self.nodes.len()
    }

    /// The abscissas `μ + √2·σ·xᵢ` at which `f` must be evaluated to form
    /// `E[f(T)]` for `T ~ N(μ, σ²)` (ascending). With `σ = 0` every
    /// abscissa collapses to `μ`.
    pub fn abscissas(&self, mean: f64, sigma: f64) -> impl Iterator<Item = f64> + '_ {
        let scale = sigma / FRAC_1_SQRT_2;
        self.nodes.iter().map(move |&x| mean + scale * x)
    }

    /// The normalized weights (sum to 1, same order as
    /// [`abscissas`](Self::abscissas)).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `E[f(T)]` for `T ~ N(mean, sigma²)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn expect_normal(&self, mean: f64, sigma: f64, mut f: impl FnMut(f64) -> f64) -> f64 {
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        if sigma == 0.0 {
            return f(mean);
        }
        self.abscissas(mean, sigma)
            .zip(&self.weights)
            .map(|(t, &w)| w * f(t))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::std_cdf;

    #[test]
    fn weights_sum_to_one() {
        for order in [1, 2, 3, 5, 9, 21, 40] {
            let q = GaussHermite::new(order);
            assert_eq!(q.order(), order);
            let s: f64 = q.weights().iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "order {order}: {s}");
        }
    }

    #[test]
    fn nodes_are_symmetric_and_sorted() {
        let q = GaussHermite::new(9);
        let nodes: Vec<f64> = q.abscissas(0.0, std::f64::consts::FRAC_1_SQRT_2).collect();
        for w in nodes.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (a, b) in nodes.iter().zip(nodes.iter().rev()) {
            assert!((a + b).abs() < 1e-12);
        }
        assert_eq!(nodes[4], 0.0, "odd rule pins the middle node at 0");
    }

    #[test]
    fn integrates_moments_exactly() {
        // Order n is exact for polynomials up to degree 2n−1; check the
        // normal moments E[T^k] for T ~ N(μ, σ²).
        let q = GaussHermite::new(6);
        let (mu, sigma) = (0.7f64, 1.3f64);
        let want = [
            1.0,
            mu,
            mu * mu + sigma * sigma,
            mu.powi(3) + 3.0 * mu * sigma * sigma,
            mu.powi(4) + 6.0 * mu * mu * sigma * sigma + 3.0 * sigma.powi(4),
        ];
        for (k, w) in want.iter().enumerate() {
            let got = q.expect_normal(mu, sigma, |t| t.powi(k as i32));
            assert!((got - w).abs() < 1e-10 * (1.0 + w.abs()), "k={k}: {got} vs {w}");
        }
    }

    #[test]
    fn probit_smoothing_identity() {
        // E[Φ(a + bT)] = Φ((a + bμ)/√(1 + b²σ²)) for T ~ N(μ, σ²) — the
        // exact closed form for a linear signal under Gaussian jitter.
        let q = GaussHermite::new(15);
        for &(a, b, mu, sigma) in
            &[(0.3, 1.0, 0.0, 0.5), (-0.2, 2.0, 0.1, 0.25), (1.0, -0.7, -0.3, 0.8)]
        {
            let got: f64 = q.expect_normal(mu, sigma, |t| std_cdf(a + b * t));
            let want = std_cdf((a + b * mu) / (1.0f64 + b * b * sigma * sigma).sqrt());
            assert!((got - want).abs() < 1e-6, "got {got} want {want}");
        }
    }

    #[test]
    fn zero_sigma_collapses_to_point_evaluation() {
        let q = GaussHermite::new(7);
        let v = q.expect_normal(2.5, 0.0, |t| t * t);
        assert_eq!(v, 6.25);
    }

    #[test]
    fn rules_are_deterministic() {
        let a = GaussHermite::new(21);
        let b = GaussHermite::new(21);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn rejects_zero_order() {
        let _ = GaussHermite::new(0);
    }
}
