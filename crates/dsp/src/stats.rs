//! Descriptive statistics: moments, summaries, histograms, percentiles.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance. Returns 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value, or `None` for an empty slice. NaN-free input assumed.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().cloned().reduce(f64::min)
}

/// Maximum value, or `None` for an empty slice. NaN-free input assumed.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().cloned().reduce(f64::max)
}

/// The `q`-th percentile (0–100) by linear interpolation between order
/// statistics. Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile must be in [0,100]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile). Returns `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Median absolute deviation: the median of `|x - median(xs)|`. Returns
/// `None` for an empty slice; a single-element or constant slice has MAD
/// zero. Multiply by ≈1.4826 for a robust σ estimate under normality
/// (see [`MAD_TO_SIGMA`]).
pub fn median_abs_deviation(xs: &[f64]) -> Option<f64> {
    let m = median(xs)?;
    let deviations: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// Consistency factor converting a [`median_abs_deviation`] into an
/// unbiased σ estimate for normally distributed data (1/Φ⁻¹(3/4)).
pub const MAD_TO_SIGMA: f64 = 1.482_602_218_505_602;

/// Mean of the central `1 - 2·trim` fraction: sort, drop
/// `floor(trim·n)` samples from each end, average the rest. Robust to a
/// bounded fraction of outliers while smoother than the median. Returns
/// `None` for an empty slice; `trim = 0` is the plain mean.
///
/// # Panics
///
/// Panics if `trim` is outside `[0, 0.5)`.
pub fn trimmed_mean(xs: &[f64], trim: f64) -> Option<f64> {
    assert!(
        (0.0..0.5).contains(&trim),
        "trim fraction must be in [0, 0.5)"
    );
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in trimmed_mean input"));
    let cut = (trim * sorted.len() as f64).floor() as usize;
    // cut < n/2 by the trim bound, so the kept range is never empty.
    Some(mean(&sorted[cut..sorted.len() - cut]))
}

/// A one-pass (Welford) accumulator for mean/variance plus extrema.
///
/// ```
/// use divot_dsp::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0] { acc.push(x); }
/// assert_eq!(acc.count(), 3);
/// assert!((acc.mean() - 2.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum seen, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum seen, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Snapshot as a [`Summary`].
    ///
    /// A streaming accumulator cannot compute order statistics, so the
    /// snapshot's [`mad`](Summary::mad) is NaN; use [`Summary::of`] when
    /// the full sample is at hand and the robust spread matters.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min().unwrap_or(f64::NAN),
            max: self.max().unwrap_or(f64::NAN),
            mad: f64::NAN,
        }
    }
}

impl Extend<f64> for Accumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

/// A compact statistical summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum (NaN if empty).
    pub min: f64,
    /// Maximum (NaN if empty).
    pub max: f64,
    /// Median absolute deviation (NaN if empty, or when the summary was
    /// snapshotted from a streaming [`Accumulator`], which cannot
    /// compute order statistics).
    pub mad: f64,
}

impl Summary {
    /// Summarize a slice in one call (including the robust
    /// [`mad`](Self::mad), which a streaming snapshot cannot provide).
    pub fn of(xs: &[f64]) -> Self {
        Summary {
            mad: median_abs_deviation(xs).unwrap_or(f64::NAN),
            ..xs.iter().copied().collect::<Accumulator>().summary()
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.6e} sd={:.6e} min={:.6e} max={:.6e} mad={:.6e}",
            self.count, self.mean, self.std_dev, self.min, self.max, self.mad
        )
    }
}

/// A fixed-range histogram with uniform bins.
///
/// Used to regenerate the distribution plots of Fig. 7(a)/Fig. 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let f = (x - self.lo) / (self.hi - self.lo);
        let i = ((f * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[i] += 1;
    }

    /// Fill from a slice.
    pub fn push_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples (including out-of-range).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Iterate over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.counts.len()).map(move |i| (self.bin_center(i), self.counts[i]))
    }

    /// Normalized bin densities (counts / total / bin-width). Empty total
    /// yields all zeros.
    pub fn densities(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64 / w)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert!((percentile(&xs, 50.0).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0,100]")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn accumulator_matches_batch() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let acc: Accumulator = xs.iter().copied().collect();
        assert_eq!(acc.count(), 1000);
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.variance() - variance(&xs)).abs() < 1e-10);
        assert_eq!(acc.min(), min(&xs));
        assert_eq!(acc.max(), max(&xs));
    }

    #[test]
    fn accumulator_empty() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), None);
        assert!(acc.summary().min.is_nan());
    }

    #[test]
    fn summary_display_nonempty() {
        let s = Summary::of(&[1.0, 2.0]);
        assert!(format!("{s}").contains("n=2"));
        assert!(format!("{s}").contains("mad="));
    }

    #[test]
    fn mad_ignores_outliers() {
        // One wild outlier moves std_dev by orders of magnitude but
        // leaves the MAD at the bulk's spread.
        let clean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let dirty = [1.0, 2.0, 3.0, 4.0, 1e6];
        assert_eq!(median_abs_deviation(&clean), Some(1.0));
        assert_eq!(median_abs_deviation(&dirty), Some(1.0));
        assert!(std_dev(&dirty) > 1e5);
        assert!((median_abs_deviation(&[3.0]).unwrap()).abs() < 1e-15);
        assert_eq!(median_abs_deviation(&[]), None);
    }

    #[test]
    fn mad_to_sigma_recovers_normal_spread() {
        use crate::rng::DivotRng;
        let mut rng = DivotRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.normal(0.0, 2.5)).collect();
        let robust_sigma = median_abs_deviation(&xs).unwrap() * MAD_TO_SIGMA;
        assert!((robust_sigma - 2.5).abs() < 0.1, "robust_sigma={robust_sigma}");
    }

    #[test]
    fn trimmed_mean_discards_tails() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        // 20% trim drops one sample from each end: mean of [2,3,4].
        assert_eq!(trimmed_mean(&xs, 0.2), Some(3.0));
        // Zero trim is the plain mean.
        assert_eq!(trimmed_mean(&xs, 0.0), Some(mean(&xs)));
        assert_eq!(trimmed_mean(&[], 0.1), None);
        assert_eq!(trimmed_mean(&[7.0], 0.4), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "trim fraction must be in [0, 0.5)")]
    fn trimmed_mean_rejects_half_trim() {
        let _ = trimmed_mean(&[1.0, 2.0], 0.5);
    }

    #[test]
    fn summary_of_carries_mad_but_streaming_snapshot_cannot() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(Summary::of(&xs).mad, 1.0);
        let acc: Accumulator = xs.iter().copied().collect();
        assert!(acc.summary().mad.is_nan());
        assert_eq!(acc.summary().count, 5);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push_all(&[0.0, 0.5, 5.0, 9.999, -1.0, 10.0, 25.0]);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_densities_integrate_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 1.0, 20);
        for i in 0..1000 {
            h.push(i as f64 / 1000.0);
        }
        let w = 1.0 / 20.0;
        let integral: f64 = h.densities().iter().map(|d| d * w).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "histogram range must be non-empty")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
