//! Receiver operating characteristic analysis: ROC curves, EER, AUC.
//!
//! Used to regenerate Fig. 7(b) and the EER claims of §IV-C. Scores follow
//! the authentication convention: *higher = more likely genuine* (similarity
//! scores). A decision threshold `θ` accepts when `score ≥ θ`; then
//!
//! * **FPR** (false positive rate) = fraction of impostor scores `≥ θ`,
//! * **TPR** (true positive rate) = fraction of genuine scores `≥ θ`,
//! * **FNR** = 1 − TPR,
//! * **EER** = the rate where FPR = FNR.

use serde::{Deserialize, Serialize};

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Acceptance threshold (accept if score ≥ threshold).
    pub threshold: f64,
    /// False positive rate at this threshold.
    pub fpr: f64,
    /// True positive rate at this threshold.
    pub tpr: f64,
}

/// A full ROC curve built from genuine and impostor score sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
    genuine_sorted: Vec<f64>,
    impostor_sorted: Vec<f64>,
    auc: f64,
    eer: f64,
    eer_threshold: f64,
}

impl RocCurve {
    /// Build a ROC curve from genuine (same-line) and impostor
    /// (different-line) similarity scores.
    ///
    /// # Panics
    ///
    /// Panics if either score set is empty or contains NaN.
    pub fn from_scores(genuine: &[f64], impostor: &[f64]) -> Self {
        assert!(!genuine.is_empty(), "genuine score set must be non-empty");
        assert!(!impostor.is_empty(), "impostor score set must be non-empty");
        assert!(
            genuine.iter().chain(impostor).all(|s| !s.is_nan()),
            "scores must not be NaN"
        );

        let mut g = genuine.to_vec();
        let mut i = impostor.to_vec();
        g.sort_by(|a, b| a.partial_cmp(b).expect("checked non-NaN"));
        i.sort_by(|a, b| a.partial_cmp(b).expect("checked non-NaN"));

        // Candidate thresholds: every distinct score, plus sentinels so the
        // curve spans (0,0) to (1,1).
        let mut thresholds: Vec<f64> = g.iter().chain(i.iter()).copied().collect();
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("checked non-NaN"));
        thresholds.dedup();
        let span = thresholds.last().unwrap() - thresholds.first().unwrap();
        let eps = if span > 0.0 { span * 1e-9 } else { 1e-12 };
        thresholds.push(thresholds.last().unwrap() + eps);

        let points: Vec<RocPoint> = thresholds
            .iter()
            .map(|&t| RocPoint {
                threshold: t,
                fpr: frac_at_or_above(&i, t),
                tpr: frac_at_or_above(&g, t),
            })
            .collect();

        let auc = auc_mann_whitney(&g, &i);
        let (eer, eer_threshold) = eer_from_sorted(&g, &i, &points);

        Self {
            points,
            genuine_sorted: g,
            impostor_sorted: i,
            auc,
            eer,
            eer_threshold,
        }
    }

    /// The curve's operating points, ordered by increasing threshold
    /// (i.e. from the (1,1) corner toward (0,0)).
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve via the Mann–Whitney U statistic
    /// (probability a random genuine score exceeds a random impostor score,
    /// ties counted half).
    pub fn auc(&self) -> f64 {
        self.auc
    }

    /// The equal error rate: the rate at which FPR equals FNR, found by
    /// linear interpolation between adjacent thresholds.
    pub fn eer(&self) -> f64 {
        self.eer
    }

    /// The threshold achieving the EER.
    pub fn eer_threshold(&self) -> f64 {
        self.eer_threshold
    }

    /// Exact empirical false positive rate at an arbitrary threshold:
    /// the fraction of impostor scores ≥ `threshold`.
    pub fn fpr_at(&self, threshold: f64) -> f64 {
        frac_at_or_above(&self.impostor_sorted, threshold)
    }

    /// Exact empirical true positive rate at an arbitrary threshold:
    /// the fraction of genuine scores ≥ `threshold`.
    pub fn tpr_at(&self, threshold: f64) -> f64 {
        frac_at_or_above(&self.genuine_sorted, threshold)
    }
}

/// Area under the ROC curve directly from unsorted score sets, without
/// building the full curve — the Mann–Whitney U statistic (probability a
/// random genuine score exceeds a random impostor score, ties counted
/// half). Cohort-size sweeps call this per operating point where the
/// full [`RocCurve`] would be rebuilt just to read one number.
///
/// # Panics
///
/// Panics if either score set is empty or contains NaN (same contract
/// as [`RocCurve::from_scores`]).
pub fn auc(genuine: &[f64], impostor: &[f64]) -> f64 {
    assert!(!genuine.is_empty(), "genuine score set must be non-empty");
    assert!(!impostor.is_empty(), "impostor score set must be non-empty");
    assert!(
        genuine.iter().chain(impostor).all(|s| !s.is_nan()),
        "scores must not be NaN"
    );
    let mut g = genuine.to_vec();
    let mut i = impostor.to_vec();
    g.sort_by(|a, b| a.partial_cmp(b).expect("checked non-NaN"));
    i.sort_by(|a, b| a.partial_cmp(b).expect("checked non-NaN"));
    auc_mann_whitney(&g, &i)
}

fn frac_at_or_above(sorted: &[f64], t: f64) -> f64 {
    // Number of elements >= t in an ascending-sorted slice.
    let idx = sorted.partition_point(|&x| x < t);
    (sorted.len() - idx) as f64 / sorted.len() as f64
}

fn auc_mann_whitney(genuine_sorted: &[f64], impostor_sorted: &[f64]) -> f64 {
    // For each genuine score count impostors strictly below (plus half
    // ties), using two-pointer sweeps over the sorted sets.
    let mut wins = 0.0f64;
    for &gs in genuine_sorted {
        let below = impostor_sorted.partition_point(|&x| x < gs);
        let at_or_below = impostor_sorted.partition_point(|&x| x <= gs);
        wins += below as f64 + 0.5 * (at_or_below - below) as f64;
    }
    wins / (genuine_sorted.len() as f64 * impostor_sorted.len() as f64)
}

fn eer_from_sorted(g: &[f64], i: &[f64], points: &[RocPoint]) -> (f64, f64) {
    // FNR rises and FPR falls as the threshold increases; find the crossing.
    let _ = (g, i);
    let mut prev: Option<(&RocPoint, f64)> = None;
    for p in points {
        let fnr = 1.0 - p.tpr;
        let diff = p.fpr - fnr;
        if let Some((pp, pdiff)) = prev {
            if pdiff >= 0.0 && diff <= 0.0 {
                // Crossing between pp and p; interpolate.
                let pfnr = 1.0 - pp.tpr;
                let denom = pdiff - diff;
                let f = if denom.abs() < 1e-300 { 0.5 } else { pdiff / denom };
                let eer_fpr = pp.fpr + (p.fpr - pp.fpr) * f;
                let eer_fnr = pfnr + (fnr - pfnr) * f;
                let thr = pp.threshold + (p.threshold - pp.threshold) * f;
                return (0.5 * (eer_fpr + eer_fnr), thr);
            }
        }
        prev = Some((p, diff));
    }
    // No crossing found (degenerate); take the point minimizing |FPR−FNR|.
    let best = points
        .iter()
        .min_by(|a, b| {
            let da = (a.fpr - (1.0 - a.tpr)).abs();
            let db = (b.fpr - (1.0 - b.tpr)).abs();
            da.partial_cmp(&db).expect("checked non-NaN")
        })
        .expect("points non-empty");
    (0.5 * (best.fpr + (1.0 - best.tpr)), best.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivotRng;

    #[test]
    fn perfectly_separated_scores() {
        let genuine = [0.9, 0.95, 0.99];
        let impostor = [0.1, 0.2, 0.3];
        let roc = RocCurve::from_scores(&genuine, &impostor);
        assert!((roc.auc() - 1.0).abs() < 1e-12);
        assert!(roc.eer() < 1e-9, "eer={}", roc.eer());
        // A mid threshold achieves FPR 0, TPR 1.
        assert_eq!(roc.fpr_at(0.5), 0.0);
        assert_eq!(roc.tpr_at(0.5), 1.0);
    }

    #[test]
    fn identical_distributions_give_half() {
        let scores = [0.1, 0.2, 0.3, 0.4, 0.5];
        let roc = RocCurve::from_scores(&scores, &scores);
        assert!((roc.auc() - 0.5).abs() < 1e-12);
        assert!((roc.eer() - 0.5).abs() < 0.21, "eer={}", roc.eer());
    }

    #[test]
    fn overlapping_gaussians_eer_matches_theory() {
        // Genuine ~ N(1, 1), impostor ~ N(-1, 1): EER = Φ(-1) ≈ 0.1587.
        let mut rng = DivotRng::seed_from_u64(42);
        let genuine: Vec<f64> = (0..60_000).map(|_| rng.normal(1.0, 1.0)).collect();
        let impostor: Vec<f64> = (0..60_000).map(|_| rng.normal(-1.0, 1.0)).collect();
        let roc = RocCurve::from_scores(&genuine, &impostor);
        assert!((roc.eer() - 0.1587).abs() < 0.005, "eer={}", roc.eer());
        // AUC = Φ(2/√2) ≈ 0.9214.
        assert!((roc.auc() - 0.9214).abs() < 0.005, "auc={}", roc.auc());
        // EER threshold is near the midpoint 0.
        assert!(roc.eer_threshold().abs() < 0.05);
    }

    #[test]
    fn rates_are_monotone_in_threshold() {
        let mut rng = DivotRng::seed_from_u64(1);
        let genuine: Vec<f64> = (0..500).map(|_| rng.normal(0.5, 0.2)).collect();
        let impostor: Vec<f64> = (0..500).map(|_| rng.normal(-0.5, 0.2)).collect();
        let roc = RocCurve::from_scores(&genuine, &impostor);
        let pts = roc.points();
        for w in pts.windows(2) {
            assert!(w[1].threshold > w[0].threshold);
            assert!(w[1].fpr <= w[0].fpr + 1e-12);
            assert!(w[1].tpr <= w[0].tpr + 1e-12);
        }
        // Curve spans full rate range.
        assert_eq!(pts[0].fpr, 1.0);
        assert_eq!(pts[0].tpr, 1.0);
        assert_eq!(pts.last().unwrap().fpr, 0.0);
        assert_eq!(pts.last().unwrap().tpr, 0.0);
    }

    #[test]
    fn fpr_at_extreme_thresholds() {
        let roc = RocCurve::from_scores(&[0.8, 0.9], &[0.1, 0.2]);
        assert_eq!(roc.fpr_at(-10.0), 1.0);
        assert_eq!(roc.fpr_at(10.0), 0.0);
        assert_eq!(roc.tpr_at(-10.0), 1.0);
        assert_eq!(roc.tpr_at(10.0), 0.0);
    }

    #[test]
    fn single_scores_work() {
        let roc = RocCurve::from_scores(&[1.0], &[0.0]);
        assert!((roc.auc() - 1.0).abs() < 1e-12);
        assert!(roc.eer() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "genuine score set must be non-empty")]
    fn rejects_empty_genuine() {
        let _ = RocCurve::from_scores(&[], &[0.1]);
    }

    #[test]
    #[should_panic(expected = "impostor score set must be non-empty")]
    fn rejects_empty_impostor() {
        let _ = RocCurve::from_scores(&[0.9], &[]);
    }

    #[test]
    #[should_panic(expected = "scores must not be NaN")]
    fn rejects_nan_scores() {
        let _ = RocCurve::from_scores(&[f64::NAN], &[0.1]);
    }

    #[test]
    fn all_tied_scores_are_chance() {
        // Every score identical in both sets: no threshold separates
        // anything — AUC is exactly chance, EER is 1/2, and the curve
        // still spans its corners without NaNs.
        let tied = [0.7; 8];
        let roc = RocCurve::from_scores(&tied, &tied);
        assert!((roc.auc() - 0.5).abs() < 1e-12, "auc={}", roc.auc());
        assert!((roc.eer() - 0.5).abs() < 1e-9, "eer={}", roc.eer());
        for p in roc.points() {
            assert!(p.fpr.is_finite() && p.tpr.is_finite());
        }
        assert_eq!(roc.points().first().map(|p| (p.fpr, p.tpr)), Some((1.0, 1.0)));
        assert_eq!(roc.points().last().map(|p| (p.fpr, p.tpr)), Some((0.0, 0.0)));
        assert!((auc(&tied, &tied) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn free_auc_matches_curve_auc() {
        let mut rng = DivotRng::seed_from_u64(9);
        let genuine: Vec<f64> = (0..400).map(|_| rng.normal(0.8, 0.3)).collect();
        let impostor: Vec<f64> = (0..300).map(|_| rng.normal(-0.2, 0.4)).collect();
        let roc = RocCurve::from_scores(&genuine, &impostor);
        assert_eq!(auc(&genuine, &impostor).to_bits(), roc.auc().to_bits());
        assert_eq!(auc(&[1.0], &[0.0]), 1.0);
        assert_eq!(auc(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "impostor score set must be non-empty")]
    fn free_auc_rejects_empty_impostor() {
        let _ = auc(&[0.5], &[]);
    }
}
