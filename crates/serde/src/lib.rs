//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no access to crates.io, and this workspace
//! uses serde only for `#[derive(Serialize, Deserialize)]` annotations on
//! model types (persistent formats here are hand-rolled byte codecs — see
//! `divot_core::fingerprint` and `divot_core::registry`). This shim keeps
//! those annotations compiling: [`Serialize`] and [`Deserialize`] are
//! marker traits with blanket implementations, and the derive macros
//! (re-exported from the `serde_derive` shim) expand to nothing.
//!
//! Swapping the workspace dependency back to real serde requires no source
//! changes in the other crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types so bounds keep compiling.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types so bounds keep compiling.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
