//! The simulated device population behind the fleet service.
//!
//! Every enrolled "field device" is one fabricated Tx-line (its own
//! copper, its own process variation) measured by the service's shared
//! iTDR configuration — the ChipletQuake / PUF-fleet deployment where a
//! central verifier attests many physically distinct links.
//!
//! **Purity is the load-bearing property.** Acquisition state never
//! persists between requests: each request builds a fresh
//! [`BusChannel`] whose RNG stream derives from
//! `(fleet seed, device, nonce, role)`. The answer to a request is
//! therefore a pure function of the request itself, independent of which
//! worker serves it, in what order, and under what queue pressure —
//! which is what lets the service fan requests across any number of
//! workers and still produce bitwise-identical verdicts.
//!
//! **Memoized fabrication keeps that contract while skipping the
//! engine.** The expensive parts of a request — the scattering-engine
//! back-reflection, the count→voltage ROM, the analytic level schedule —
//! are pure functions of `(line network, environment)` and
//! `(front-end config, repetitions)` respectively: they do not depend on
//! the request seed at all. The fleet therefore computes each one once
//! (per device for the response, fleet-wide for ROM and schedule) and
//! pre-seeds every per-request channel with the shared `Arc`s. The
//! seeded values are exactly what the channel would have computed
//! itself, so measurements stay bitwise identical to the uncached path —
//! [`acquire_uncached`](SimulatedFleet::acquire_uncached) exists
//! precisely so tests can assert that equivalence.

use divot_analog::frontend::FrontEndConfig;
use divot_core::apc::ReconstructionTable;
use divot_core::channel::BusChannel;
use divot_core::exec::ExecPolicy;
use divot_core::itdr::{AcqMode, Itdr, ItdrConfig};
use divot_core::pdm::effective_cdf;
use divot_core::registry::Pairing;
use divot_dsp::rng::{mix_seed, DivotRng};
use divot_dsp::waveform::Waveform;
use divot_txline::attack::Attack;
use divot_txline::board::{Board, BoardConfig, DesignPrecompute};
use divot_txline::env::{EnvState, Environment};
use divot_txline::scatter::{Network, SimConfig};
use divot_txline::units::{Ohms, Seconds};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Seed-derivation domain of the master-end channel.
const MASTER_DOMAIN: u64 = 0x4D53_5452;
/// Seed-derivation domain of the slave-end channel.
const SLAVE_DOMAIN: u64 = 0x534C_4156;
/// Seed-derivation domain of transient-fault rolls.
const FAULT_DOMAIN: u64 = 0xFA17_FA17;
/// Seed-derivation domain of streaming-subscription scan frames.
const SUB_DOMAIN: u64 = 0x5343_414E;
/// Seed-derivation domain of counterfeit-lot board fabrication.
const COUNTERFEIT_DOMAIN: u64 = 0xCF17_CF17;

/// The acquisition nonce of subscription frame `seq` under a
/// subscription registered with `base` — one shared derivation used by
/// the reactor's push path, the pipelined client, and the equivalence
/// tests, so a pushed scan frame is bitwise-identical to an explicit
/// [`crate::Request::MonitorScan`] issued with the same derived nonce.
pub fn subscription_nonce(base: u64, seq: u64) -> u64 {
    mix_seed(mix_seed(base, SUB_DOMAIN), seq)
}

/// A supply-chain anomaly planted on one simulated device — the ground
/// truth intake-scan benchmarks and tests measure detection against.
#[derive(Debug, Clone, PartialEq)]
pub enum Anomaly {
    /// The device's board comes from a different (drifted) fabrication
    /// lot: off-nominal impedance, wider ripple, sloppier connectors —
    /// a counterfeit or relabeled board.
    Counterfeit,
    /// The device's genuine board carries a physical attack artifact
    /// (solder scar, wire tap, probe, swapped termination chip).
    Tampered(Attack),
}

/// Configuration of a simulated fleet.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// Number of field devices (one Tx-line each).
    pub devices: usize,
    /// Master fleet seed: fabrication and every per-request stream
    /// derive from it.
    pub seed: u64,
    /// The shared instrument configuration.
    pub itdr: ItdrConfig,
    /// Front-end configuration of every device channel.
    pub frontend: FrontEndConfig,
    /// Measurements averaged per enrollment.
    pub enroll_count: usize,
    /// Measurements averaged per verify/scan acquisition.
    pub verify_average: usize,
    /// Ground-truth anomalies planted at fabrication: `(device index,
    /// anomaly)`. Devices not listed are genuine.
    pub anomalies: Vec<(usize, Anomaly)>,
}

impl FleetSimConfig {
    /// A small fast-instrument fleet (unit tests, CI smoke, bench).
    ///
    /// Enrollment averages 8 measurements and runtime decisions average
    /// 4: under [`ItdrConfig::fast`] this keeps genuine similarities
    /// comfortably above and impostor similarities comfortably below the
    /// fleet's 0.89 operating threshold (measured over 8 devices × 1000
    /// nonces: genuine ≥ 0.92, impostor ≤ 0.85).
    ///
    /// Acquisition runs in [`AcqMode::Analytic`] — closed-form trip
    /// probabilities instead of per-trial comparator simulation — which
    /// is the fleet's verify fast path. The instrument silently falls
    /// back to Trial when the front end's comparator hysteresis couples
    /// trials ([`FrontEndConfig::supports_analytic`] is false).
    pub fn fast(devices: usize, seed: u64) -> Self {
        Self {
            devices,
            seed,
            itdr: ItdrConfig::fast().with_acq_mode(AcqMode::Analytic),
            frontend: FrontEndConfig::default(),
            enroll_count: 8,
            verify_average: 4,
            anomalies: Vec::new(),
        }
    }

    /// The same configuration with a different acquisition mode
    /// (determinism tests compare Trial and Analytic fleets).
    pub fn with_acq_mode(mut self, mode: AcqMode) -> Self {
        self.itdr = self.itdr.with_acq_mode(mode);
        self
    }

    /// The same configuration with planted ground-truth anomalies.
    pub fn with_anomalies(mut self, anomalies: Vec<(usize, Anomaly)>) -> Self {
        self.anomalies = anomalies;
        self
    }
}

/// Per-device memoized acquisition state: everything a request channel
/// needs that does not depend on the request.
#[derive(Debug)]
struct WarmDevice {
    /// The (static, room-condition) environment state the response was
    /// computed under — the cache key per-request channels look it up by.
    state: EnvState,
    /// The scattering engine's back-reflection for that state: one
    /// engine run per device, shared by every request ever served on it.
    response: Arc<Waveform>,
}

/// One field device of the fleet.
#[derive(Debug)]
struct Device {
    name: String,
    /// The device's physical network — the fabricated line with any
    /// planted anomaly already applied. Stored as a [`Network`] (not a
    /// `TxLine`) because attack artifacts (taps, scars) only exist at
    /// the network level; for genuine devices it is exactly
    /// `line.network()`, so per-request channels built from it are
    /// bitwise identical to the pre-anomaly code path.
    network: Network,
    /// Lazily-computed warm state; `OnceLock` so the first request on
    /// the device pays the engine run and every later request (on any
    /// worker) shares it.
    warm: OnceLock<WarmDevice>,
}

/// The simulated device population: fabricated lines plus the shared
/// instrument. All methods take `&self`; per-request channels are local,
/// so the fleet is freely shared across worker threads.
#[derive(Debug)]
pub struct SimulatedFleet {
    config: FleetSimConfig,
    devices: Vec<Device>,
    /// Name → index map: device lookup is O(1) no matter how many buses
    /// the fleet watches.
    index: HashMap<String, usize>,
    /// Fleet-wide count→voltage ROM (pure function of the shared
    /// front-end config and repetition count) — seeded into every
    /// request channel so none of them rebuilds it.
    table: Arc<ReconstructionTable>,
    /// Fleet-wide analytic distinct-level schedule, shared the same way.
    schedule: Arc<Vec<(f64, u32)>>,
    /// The shared board design: every board of the cohort is fabricated
    /// against this one precompute (ρ-shape, connector window, nominal
    /// line), so board N+1 reuses the design work board 0 paid for.
    design: Arc<DesignPrecompute>,
    itdr: Itdr,
}

impl SimulatedFleet {
    /// Fabricate the population: devices are packed two per
    /// [`BoardConfig::small_test`] board, every board seeded from the
    /// fleet seed, so the same configuration always yields the identical
    /// fleet. The design precompute, shared ROM, and level schedule are
    /// built here, once; per-device responses are computed lazily on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if `config.devices == 0`.
    pub fn new(config: FleetSimConfig) -> Self {
        assert!(config.devices >= 1, "fleet needs at least one device");
        let board_cfg = BoardConfig::small_test();
        let per_board = board_cfg.line_count;
        let design = Arc::new(DesignPrecompute::new(board_cfg));
        let boards: Vec<Board> = (0..config.devices.div_ceil(per_board))
            .map(|b| Board::fabricate_with(&design, mix_seed(config.seed, b as u64)))
            .collect();
        let mut devices: Vec<Device> = (0..config.devices)
            .map(|i| Device {
                name: Self::device_name(i),
                network: boards[i / per_board].line(i % per_board).network(),
                warm: OnceLock::new(),
            })
            .collect();

        // Plant ground-truth anomalies: counterfeit devices get a board
        // from a drifted fab lot, tampered devices get an attack artifact
        // applied to their genuine network. Fabrication stays a pure
        // function of `(seed, device, anomaly)`, so anomalous fleets are
        // exactly as deterministic as clean ones.
        let mut seen = vec![false; config.devices];
        let counterfeit_design = config
            .anomalies
            .iter()
            .any(|(_, a)| *a == Anomaly::Counterfeit)
            .then(|| DesignPrecompute::new(Self::counterfeit_board_config(design.config())));
        for (i, anomaly) in &config.anomalies {
            assert!(*i < config.devices, "anomaly on unknown device {i}");
            assert!(!seen[*i], "device {i} has two anomalies");
            seen[*i] = true;
            devices[*i].network = match anomaly {
                Anomaly::Counterfeit => {
                    let fab = counterfeit_design.as_ref().expect("built above");
                    let board = Board::fabricate_with(
                        fab,
                        mix_seed(config.seed, COUNTERFEIT_DOMAIN ^ (*i / per_board) as u64),
                    );
                    board.line(*i % per_board).network()
                }
                Anomaly::Tampered(attack) => attack.apply(&devices[*i].network),
            };
        }
        let index = devices
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), i))
            .collect();
        let table = Arc::new(ReconstructionTable::build(
            &effective_cdf(&config.frontend),
            config.itdr.repetitions,
        ));
        let schedule = Arc::new(config.frontend.level_schedule(config.itdr.repetitions));
        Self {
            itdr: Itdr::new(config.itdr),
            config,
            devices,
            index,
            table,
            schedule,
            design,
        }
    }

    /// The shared board-design precompute the cohort was fabricated
    /// against (cohort intake scans read the nominal reference line off
    /// it).
    pub fn design(&self) -> &Arc<DesignPrecompute> {
        &self.design
    }

    /// The drifted fab lot counterfeit boards come from: off-nominal
    /// impedance (+10 %), wider process ripple (×3), and sloppier
    /// connector assembly (×2) — same design, different (cheaper)
    /// factory using a different stackup.
    pub fn counterfeit_board_config(genuine: &BoardConfig) -> BoardConfig {
        let mut cfg = genuine.clone();
        cfg.process.z0 = Ohms(cfg.process.z0.0 * 1.10);
        cfg.process.relative_sigma *= 3.0;
        cfg.process.connector_bump *= 2.0;
        cfg
    }

    /// The ground-truth anomaly planted on device `i`, if any —
    /// benchmarks and tests label their ROC populations with this.
    pub fn anomaly(&self, i: usize) -> Option<&Anomaly> {
        self.config
            .anomalies
            .iter()
            .find(|(d, _)| *d == i)
            .map(|(_, a)| a)
    }

    /// The canonical name of device `i` (`bus-000`, `bus-001`, …).
    pub fn device_name(i: usize) -> String {
        format!("bus-{i:03}")
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// All device names in index order.
    pub fn device_names(&self) -> Vec<String> {
        self.devices.iter().map(|d| d.name.clone()).collect()
    }

    /// The configuration this fleet was built with.
    pub fn config(&self) -> &FleetSimConfig {
        &self.config
    }

    /// The index of device `name`, or `None` if it does not exist.
    /// O(1): backed by the prebuilt name → index map. Stable for the
    /// fleet's lifetime, so it doubles as a compact cache-key component.
    pub fn device_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    fn device(&self, name: &str) -> Option<(usize, &Device)> {
        let i = self.device_index(name)?;
        Some((i, &self.devices[i]))
    }

    /// The per-request channel seed: derived from
    /// `(fleet seed, device index, role domain, nonce)`.
    fn request_seed(&self, index: usize, domain: u64, nonce: u64) -> u64 {
        mix_seed(mix_seed(self.config.seed, domain ^ index as u64), nonce)
    }

    /// The memoized warm state of device `i`, computing it on first use.
    ///
    /// The probe channel uses a fixed seed because nothing seed-dependent
    /// is read from it: [`BusChannel::response_now`] is a read-only
    /// physical peek (the scattering engine consumes no RNG), and the
    /// environment state is a pure function of the (static, room)
    /// environment.
    fn warm(&self, i: usize) -> &WarmDevice {
        let device = &self.devices[i];
        device.warm.get_or_init(|| {
            let mut probe = self.raw_channel(device, 0);
            let response = probe.response_now();
            let state = probe.environment().state_at(Seconds(0.0));
            WarmDevice { state, response }
        })
    }

    /// An unseeded channel onto `device`'s (possibly anomalous) network.
    /// For genuine devices this is exactly `BusChannel::new(line, ..)`
    /// — same room environment, same default simulation config.
    fn raw_channel(&self, device: &Device, seed: u64) -> BusChannel {
        BusChannel::from_network(
            device.network.clone(),
            Environment::room(),
            SimConfig::default(),
            self.config.frontend,
            seed,
        )
    }

    /// A fresh channel onto `device`'s line whose noise stream derives
    /// from `(fleet seed, device, nonce, domain)`, pre-seeded with the
    /// memoized response / ROM / schedule so serving it never re-runs
    /// the scattering engine or rebuilds acquisition tables.
    fn channel(&self, device: &Device, index: usize, domain: u64, nonce: u64) -> BusChannel {
        let mut ch = self.raw_channel(device, self.request_seed(index, domain, nonce));
        let warm = self.warm(index);
        ch.seed_response(warm.state, Arc::clone(&warm.response));
        ch.seed_reconstruction_table(Arc::clone(&self.table));
        ch.seed_level_schedule(self.config.itdr.repetitions, Arc::clone(&self.schedule));
        ch
    }

    /// Calibration-time enrollment of `name`: both bus ends enroll over
    /// the shared instrument (serially — the service already fans out
    /// across requests). `None` when the device does not exist.
    pub fn enroll(&self, name: &str, nonce: u64) -> Option<Pairing> {
        let (i, device) = self.device(name)?;
        let mut master = self.channel(device, i, MASTER_DOMAIN, nonce);
        let mut slave = self.channel(device, i, SLAVE_DOMAIN, nonce);
        Some(Pairing::enroll_with(
            &self.itdr,
            &mut master,
            &mut slave,
            self.config.enroll_count,
            ExecPolicy::Serial,
        ))
    }

    /// Batched calibration enrollment: enroll every `(name, nonce)` item,
    /// fanning whole devices across `policy` (each device's own
    /// acquisition stays serial inside its work item, so fan-outs never
    /// nest). Distinct devices are warmed up front under the same policy,
    /// so a cold cohort's scattering-engine runs parallelize instead of
    /// serializing behind per-device `OnceLock` waits.
    ///
    /// Entry `i` is bitwise identical to `enroll(&items[i].0,
    /// items[i].1)` run solo — each item's answer is a pure function of
    /// the request — so batching (and the policy) is a scheduling choice,
    /// never a semantic one.
    ///
    /// Returns `None` if *any* name is unknown; the batch is
    /// all-or-nothing and nothing is acquired in that case.
    pub fn enroll_batch(
        &self,
        items: &[(String, u64)],
        policy: ExecPolicy,
    ) -> Option<Vec<Pairing>> {
        let idx: Vec<usize> = items
            .iter()
            .map(|(n, _)| self.device_index(n))
            .collect::<Option<_>>()?;
        self.warm_all(&idx, policy);
        Some(policy.run_indexed(items.len(), |k| {
            let i = idx[k];
            let device = &self.devices[i];
            let nonce = items[k].1;
            let mut master = self.channel(device, i, MASTER_DOMAIN, nonce);
            let mut slave = self.channel(device, i, SLAVE_DOMAIN, nonce);
            Pairing::enroll_with(
                &self.itdr,
                &mut master,
                &mut slave,
                self.config.enroll_count,
                ExecPolicy::Serial,
            )
        }))
    }

    /// Batched runtime acquisition: one averaged master-end IIP per
    /// `(name, nonce)` item, with the same fan-out, bitwise-equivalence,
    /// and all-or-nothing contract as [`enroll_batch`](Self::enroll_batch)
    /// (entry `i` matches `acquire` run solo).
    pub fn acquire_batch(
        &self,
        items: &[(String, u64)],
        policy: ExecPolicy,
    ) -> Option<Vec<Waveform>> {
        let idx: Vec<usize> = items
            .iter()
            .map(|(n, _)| self.device_index(n))
            .collect::<Option<_>>()?;
        self.warm_all(&idx, policy);
        Some(policy.run_indexed(items.len(), |k| {
            let i = idx[k];
            let device = &self.devices[i];
            let mut ch = self.channel(device, i, MASTER_DOMAIN, items[k].1);
            self.itdr
                .measure_averaged_with(&mut ch, self.config.verify_average, ExecPolicy::Serial)
        }))
    }

    /// Warm every distinct device of `idx` under `policy` (engine runs
    /// are the dominant cold cost, and `OnceLock` makes concurrent
    /// duplicates harmless but wasteful).
    fn warm_all(&self, idx: &[usize], policy: ExecPolicy) {
        let mut distinct = idx.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        policy.run_indexed(distinct.len(), |k| {
            self.warm(distinct[k]);
        });
    }

    /// One runtime acquisition from the master end of `name` under
    /// request `nonce`: the averaged IIP a verify or scan decides on.
    /// `None` when the device does not exist.
    ///
    /// # Cache interaction
    ///
    /// The acquisition runs on a pre-seeded channel: the device's
    /// memoized response (an engine run paid once, on the first request
    /// ever served for the device), the fleet-wide ROM table, and the
    /// analytic level schedule are handed to the channel as shared
    /// `Arc`s, so warm-path requests perform zero scattering-engine runs
    /// and zero table builds. The seeded values are exactly what the
    /// channel would compute itself — they depend only on `(line,
    /// environment)` and `(front-end config, repetitions)`, never on
    /// `nonce` — so the result is bitwise identical to
    /// [`acquire_uncached`](Self::acquire_uncached) and the cache can
    /// never leak state between requests.
    pub fn acquire(&self, name: &str, nonce: u64) -> Option<Waveform> {
        self.acquire_traced(name, nonce, None, "acquire")
    }

    /// [`acquire`](Self::acquire) with per-stage trace spans: the
    /// device's warm-up (scattering-engine fabrication, paid only on the
    /// first request ever served for the device — near-zero afterwards)
    /// and the averaged ITDR sweep are timed separately under `kind`.
    /// With `trace` `None` this *is* `acquire`: the stages run
    /// identically and nothing is emitted.
    pub fn acquire_traced(
        &self,
        name: &str,
        nonce: u64,
        trace: Option<divot_telemetry::TraceCtx>,
        kind: &'static str,
    ) -> Option<Waveform> {
        let (i, device) = self.device(name)?;
        let span = trace.map(|c| c.span(kind, "fabrication"));
        self.warm(i);
        drop(span);
        let mut ch = self.channel(device, i, MASTER_DOMAIN, nonce);
        let span = trace.map(|c| c.span(kind, "sweep"));
        let measured = self.itdr.measure_averaged_with(
            &mut ch,
            self.config.verify_average,
            ExecPolicy::Serial,
        );
        drop(span);
        Some(measured)
    }

    /// [`acquire`](Self::acquire) without any memoized state: the
    /// channel computes its own response, ROM, and schedule from
    /// scratch.
    ///
    /// # Cache interaction
    ///
    /// This path never touches (and never populates) the fleet's warm
    /// state — it is the reference for cache-correctness tests, which
    /// assert the seeded fast path matches it bitwise for every `(name,
    /// nonce)`. It costs one scattering-engine run and one table build
    /// per call, so use it for equivalence checks, not throughput.
    pub fn acquire_uncached(&self, name: &str, nonce: u64) -> Option<Waveform> {
        let (i, device) = self.device(name)?;
        let mut ch = self.raw_channel(device, self.request_seed(i, MASTER_DOMAIN, nonce));
        Some(self.itdr.measure_averaged_with(
            &mut ch,
            self.config.verify_average,
            ExecPolicy::Serial,
        ))
    }

    /// Deterministic transient-fault roll for attempt `attempt` of the
    /// request `(name, nonce)`: `true` with probability `prob`,
    /// reproducibly — the same attempt of the same request faults
    /// identically on every worker layout.
    pub fn transient_fault(&self, name: &str, nonce: u64, attempt: u32, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        let Some(i) = self.device_index(name) else {
            return false;
        };
        let mut rng = DivotRng::derive(
            mix_seed(self.config.seed, FAULT_DOMAIN ^ i as u64),
            mix_seed(nonce, u64::from(attempt)),
        );
        rng.bernoulli(prob.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(devices: usize) -> SimulatedFleet {
        SimulatedFleet::new(FleetSimConfig::fast(devices, 99))
    }

    #[test]
    fn devices_have_distinct_copper() {
        let f = fleet(4);
        assert_eq!(f.device_count(), 4);
        let a = f.acquire("bus-000", 1).unwrap();
        let b = f.acquire("bus-001", 1).unwrap();
        assert_ne!(a, b, "different devices must have different IIPs");
    }

    #[test]
    fn acquisition_is_pure_in_the_request() {
        let f = fleet(2);
        let a = f.acquire("bus-001", 42).unwrap();
        let b = f.acquire("bus-001", 42).unwrap();
        assert_eq!(a, b, "same (device, nonce) → identical acquisition");
        let c = f.acquire("bus-001", 43).unwrap();
        assert_ne!(a, c, "a new nonce sees fresh measurement noise");
    }

    #[test]
    fn memoized_acquisition_matches_uncached_bitwise() {
        let f = fleet(3);
        for (name, nonce) in [("bus-000", 7), ("bus-002", 12345), ("bus-001", 0)] {
            let fast = f.acquire(name, nonce).unwrap();
            let slow = f.acquire_uncached(name, nonce).unwrap();
            for (a, b) in fast.samples().iter().zip(slow.samples()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}/{nonce}");
            }
        }
    }

    #[test]
    fn device_index_is_stable_and_total() {
        let f = fleet(5);
        for i in 0..5 {
            assert_eq!(f.device_index(&SimulatedFleet::device_name(i)), Some(i));
        }
        assert_eq!(f.device_index("bus-005"), None);
        assert_eq!(f.device_index(""), None);
    }

    #[test]
    fn trial_mode_fleet_still_supported() {
        let f = SimulatedFleet::new(FleetSimConfig::fast(2, 99).with_acq_mode(AcqMode::Trial));
        let fast = f.acquire("bus-000", 3).unwrap();
        let slow = f.acquire_uncached("bus-000", 3).unwrap();
        assert_eq!(fast, slow, "memoization must be mode-agnostic");
    }

    #[test]
    fn enrolled_pairing_authenticates_the_device() {
        use divot_core::auth::{AuthPolicy, Authenticator};
        let f = fleet(2);
        let pairing = f.enroll("bus-000", 7).unwrap();
        let auth = Authenticator::new(AuthPolicy::default());
        let genuine = f.acquire("bus-000", 100).unwrap();
        assert!(auth.verify(&pairing.master, &genuine).is_accept());
        let impostor = f.acquire("bus-001", 100).unwrap();
        assert!(!auth.verify(&pairing.master, &impostor).is_accept());
    }

    #[test]
    fn unknown_device_is_none() {
        let f = fleet(1);
        assert!(f.enroll("bus-999", 0).is_none());
        assert!(f.acquire("nope", 0).is_none());
    }

    #[test]
    fn batched_enrollment_matches_solo_bitwise() {
        let f = fleet(3);
        let items: Vec<(String, u64)> = [(0usize, 7u64), (2, 9), (1, 7), (0, 11)]
            .iter()
            .map(|&(i, nonce)| (SimulatedFleet::device_name(i), nonce))
            .collect();
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let batch = f.enroll_batch(&items, policy).unwrap();
            assert_eq!(batch.len(), items.len());
            for (k, (name, nonce)) in items.iter().enumerate() {
                let solo = f.enroll(name, *nonce).unwrap();
                assert_eq!(batch[k].master, solo.master, "{name}/{nonce}");
                assert_eq!(batch[k].slave, solo.slave, "{name}/{nonce}");
            }
        }
    }

    #[test]
    fn batched_acquisition_matches_solo_bitwise() {
        let f = fleet(2);
        let items: Vec<(String, u64)> = vec![
            (SimulatedFleet::device_name(1), 3),
            (SimulatedFleet::device_name(0), 3),
            (SimulatedFleet::device_name(1), 4),
        ];
        let batch = f.acquire_batch(&items, ExecPolicy::Parallel).unwrap();
        for (k, (name, nonce)) in items.iter().enumerate() {
            let solo = f.acquire(name, *nonce).unwrap();
            for (a, b) in batch[k].samples().iter().zip(solo.samples()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}/{nonce}");
            }
        }
    }

    #[test]
    fn batch_with_unknown_device_is_all_or_nothing() {
        let f = fleet(2);
        let items = vec![
            (SimulatedFleet::device_name(0), 1u64),
            ("bus-999".to_string(), 2),
        ];
        assert!(f.enroll_batch(&items, ExecPolicy::Serial).is_none());
        assert!(f.acquire_batch(&items, ExecPolicy::Serial).is_none());
    }

    #[test]
    fn anomalous_devices_differ_but_stay_deterministic() {
        let anomalies = vec![
            (0usize, Anomaly::Counterfeit),
            (2usize, Anomaly::Tampered(Attack::SolderScar { position: 0.4 })),
        ];
        let clean = fleet(4);
        let dirty = SimulatedFleet::new(
            FleetSimConfig::fast(4, 99).with_anomalies(anomalies.clone()),
        );
        let dirty2 = SimulatedFleet::new(
            FleetSimConfig::fast(4, 99).with_anomalies(anomalies),
        );
        for i in [0usize, 2] {
            let name = SimulatedFleet::device_name(i);
            let a = dirty.acquire(&name, 5).unwrap();
            assert_ne!(a, clean.acquire(&name, 5).unwrap(), "{name} must deviate");
            let b = dirty2.acquire(&name, 5).unwrap();
            for (x, y) in a.samples().iter().zip(b.samples()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{name} must be reproducible");
            }
        }
        assert_eq!(dirty.anomaly(0), Some(&Anomaly::Counterfeit));
        assert_eq!(dirty.anomaly(1), None);
    }

    #[test]
    fn genuine_devices_are_bitwise_unaffected_by_anomalous_neighbors() {
        let clean = fleet(4);
        let dirty = SimulatedFleet::new(
            FleetSimConfig::fast(4, 99)
                .with_anomalies(vec![(0, Anomaly::Tampered(Attack::paper_wiretap()))]),
        );
        for i in 1..4 {
            let name = SimulatedFleet::device_name(i);
            let a = clean.acquire(&name, 77).unwrap();
            let b = dirty.acquire(&name, 77).unwrap();
            for (x, y) in a.samples().iter().zip(b.samples()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{name}");
            }
        }
    }

    #[test]
    fn anomalous_acquisition_matches_uncached_bitwise() {
        let f = SimulatedFleet::new(
            FleetSimConfig::fast(2, 7).with_anomalies(vec![(1, Anomaly::Counterfeit)]),
        );
        let fast = f.acquire("bus-001", 9).unwrap();
        let slow = f.acquire_uncached("bus-001", 9).unwrap();
        for (a, b) in fast.samples().iter().zip(slow.samples()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "anomaly on unknown device")]
    fn anomaly_on_missing_device_is_rejected() {
        let _ = SimulatedFleet::new(
            FleetSimConfig::fast(2, 1).with_anomalies(vec![(5, Anomaly::Counterfeit)]),
        );
    }

    #[test]
    #[should_panic(expected = "two anomalies")]
    fn duplicate_anomalies_are_rejected() {
        let _ = SimulatedFleet::new(FleetSimConfig::fast(2, 1).with_anomalies(vec![
            (0, Anomaly::Counterfeit),
            (0, Anomaly::Tampered(Attack::paper_wiretap())),
        ]));
    }

    #[test]
    fn fault_rolls_are_deterministic_and_respect_probability() {
        let f = fleet(3);
        for attempt in 0..4 {
            assert_eq!(
                f.transient_fault("bus-002", 5, attempt, 0.3),
                f.transient_fault("bus-002", 5, attempt, 0.3),
            );
        }
        assert!(!f.transient_fault("bus-000", 1, 0, 0.0));
        let faults = (0..200)
            .filter(|&n| f.transient_fault("bus-001", n, 0, 0.25))
            .count();
        assert!((20..80).contains(&faults), "≈25% expected, got {faults}/200");
    }
}
