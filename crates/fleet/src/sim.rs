//! The simulated device population behind the fleet service.
//!
//! Every enrolled "field device" is one fabricated Tx-line (its own
//! copper, its own process variation) measured by the service's shared
//! iTDR configuration — the ChipletQuake / PUF-fleet deployment where a
//! central verifier attests many physically distinct links.
//!
//! **Purity is the load-bearing property.** Acquisition state never
//! persists between requests: each request builds a fresh
//! [`BusChannel`] whose RNG stream derives from
//! `(fleet seed, device, nonce, role)`. The answer to a request is
//! therefore a pure function of the request itself, independent of which
//! worker serves it, in what order, and under what queue pressure —
//! which is what lets the service fan requests across any number of
//! workers and still produce bitwise-identical verdicts.

use divot_analog::frontend::FrontEndConfig;
use divot_core::channel::BusChannel;
use divot_core::exec::ExecPolicy;
use divot_core::itdr::{Itdr, ItdrConfig};
use divot_core::registry::Pairing;
use divot_dsp::rng::{mix_seed, DivotRng};
use divot_dsp::waveform::Waveform;
use divot_txline::board::{Board, BoardConfig};
use divot_txline::scatter::TxLine;

/// Seed-derivation domain of the master-end channel.
const MASTER_DOMAIN: u64 = 0x4D53_5452;
/// Seed-derivation domain of the slave-end channel.
const SLAVE_DOMAIN: u64 = 0x534C_4156;
/// Seed-derivation domain of transient-fault rolls.
const FAULT_DOMAIN: u64 = 0xFA17_FA17;

/// Configuration of a simulated fleet.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// Number of field devices (one Tx-line each).
    pub devices: usize,
    /// Master fleet seed: fabrication and every per-request stream
    /// derive from it.
    pub seed: u64,
    /// The shared instrument configuration.
    pub itdr: ItdrConfig,
    /// Front-end configuration of every device channel.
    pub frontend: FrontEndConfig,
    /// Measurements averaged per enrollment.
    pub enroll_count: usize,
    /// Measurements averaged per verify/scan acquisition.
    pub verify_average: usize,
}

impl FleetSimConfig {
    /// A small fast-instrument fleet (unit tests, CI smoke, bench).
    ///
    /// Enrollment averages 8 measurements and runtime decisions average
    /// 4: under [`ItdrConfig::fast`] this keeps genuine similarities
    /// comfortably above and impostor similarities comfortably below the
    /// fleet's 0.89 operating threshold (measured over 8 devices × 1000
    /// nonces: genuine ≥ 0.92, impostor ≤ 0.85).
    pub fn fast(devices: usize, seed: u64) -> Self {
        Self {
            devices,
            seed,
            itdr: ItdrConfig::fast(),
            frontend: FrontEndConfig::default(),
            enroll_count: 8,
            verify_average: 4,
        }
    }
}

/// One field device of the fleet.
#[derive(Debug, Clone)]
struct Device {
    name: String,
    line: TxLine,
}

/// The simulated device population: fabricated lines plus the shared
/// instrument. All methods take `&self`; per-request channels are local,
/// so the fleet is freely shared across worker threads.
#[derive(Debug)]
pub struct SimulatedFleet {
    config: FleetSimConfig,
    devices: Vec<Device>,
    itdr: Itdr,
}

impl SimulatedFleet {
    /// Fabricate the population: devices are packed two per
    /// [`BoardConfig::small_test`] board, every board seeded from the
    /// fleet seed, so the same configuration always yields the identical
    /// fleet.
    ///
    /// # Panics
    ///
    /// Panics if `config.devices == 0`.
    pub fn new(config: FleetSimConfig) -> Self {
        assert!(config.devices >= 1, "fleet needs at least one device");
        let board_cfg = BoardConfig::small_test();
        let per_board = board_cfg.line_count;
        let boards: Vec<Board> = (0..config.devices.div_ceil(per_board))
            .map(|b| Board::fabricate(&board_cfg, mix_seed(config.seed, b as u64)))
            .collect();
        let devices = (0..config.devices)
            .map(|i| Device {
                name: Self::device_name(i),
                line: boards[i / per_board].line(i % per_board).clone(),
            })
            .collect();
        Self {
            itdr: Itdr::new(config.itdr),
            config,
            devices,
        }
    }

    /// The canonical name of device `i` (`bus-000`, `bus-001`, …).
    pub fn device_name(i: usize) -> String {
        format!("bus-{i:03}")
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// All device names in index order.
    pub fn device_names(&self) -> Vec<String> {
        self.devices.iter().map(|d| d.name.clone()).collect()
    }

    /// The configuration this fleet was built with.
    pub fn config(&self) -> &FleetSimConfig {
        &self.config
    }

    fn device(&self, name: &str) -> Option<(usize, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .find(|(_, d)| d.name == name)
    }

    /// A fresh channel onto `device`'s line whose noise stream derives
    /// from `(fleet seed, device, nonce, domain)`.
    fn channel(&self, device: &Device, index: usize, domain: u64, nonce: u64) -> BusChannel {
        let seed = mix_seed(
            mix_seed(self.config.seed, domain ^ index as u64),
            nonce,
        );
        BusChannel::new(device.line.clone(), self.config.frontend, seed)
    }

    /// Calibration-time enrollment of `name`: both bus ends enroll over
    /// the shared instrument (serially — the service already fans out
    /// across requests). `None` when the device does not exist.
    pub fn enroll(&self, name: &str, nonce: u64) -> Option<Pairing> {
        let (i, device) = self.device(name)?;
        let mut master = self.channel(device, i, MASTER_DOMAIN, nonce);
        let mut slave = self.channel(device, i, SLAVE_DOMAIN, nonce);
        Some(Pairing::enroll_with(
            &self.itdr,
            &mut master,
            &mut slave,
            self.config.enroll_count,
            ExecPolicy::Serial,
        ))
    }

    /// One runtime acquisition from the master end of `name` under
    /// request `nonce`: the averaged IIP a verify or scan decides on.
    /// `None` when the device does not exist.
    pub fn acquire(&self, name: &str, nonce: u64) -> Option<Waveform> {
        let (i, device) = self.device(name)?;
        let mut ch = self.channel(device, i, MASTER_DOMAIN, nonce);
        Some(self.itdr.measure_averaged_with(
            &mut ch,
            self.config.verify_average,
            ExecPolicy::Serial,
        ))
    }

    /// Deterministic transient-fault roll for attempt `attempt` of the
    /// request `(name, nonce)`: `true` with probability `prob`,
    /// reproducibly — the same attempt of the same request faults
    /// identically on every worker layout.
    pub fn transient_fault(&self, name: &str, nonce: u64, attempt: u32, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        let Some((i, _)) = self.device(name) else {
            return false;
        };
        let mut rng = DivotRng::derive(
            mix_seed(self.config.seed, FAULT_DOMAIN ^ i as u64),
            mix_seed(nonce, u64::from(attempt)),
        );
        rng.bernoulli(prob.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(devices: usize) -> SimulatedFleet {
        SimulatedFleet::new(FleetSimConfig::fast(devices, 99))
    }

    #[test]
    fn devices_have_distinct_copper() {
        let f = fleet(4);
        assert_eq!(f.device_count(), 4);
        let a = f.acquire("bus-000", 1).unwrap();
        let b = f.acquire("bus-001", 1).unwrap();
        assert_ne!(a, b, "different devices must have different IIPs");
    }

    #[test]
    fn acquisition_is_pure_in_the_request() {
        let f = fleet(2);
        let a = f.acquire("bus-001", 42).unwrap();
        let b = f.acquire("bus-001", 42).unwrap();
        assert_eq!(a, b, "same (device, nonce) → identical acquisition");
        let c = f.acquire("bus-001", 43).unwrap();
        assert_ne!(a, c, "a new nonce sees fresh measurement noise");
    }

    #[test]
    fn enrolled_pairing_authenticates_the_device() {
        use divot_core::auth::{AuthPolicy, Authenticator};
        let f = fleet(2);
        let pairing = f.enroll("bus-000", 7).unwrap();
        let auth = Authenticator::new(AuthPolicy::default());
        let genuine = f.acquire("bus-000", 100).unwrap();
        assert!(auth.verify(&pairing.master, &genuine).is_accept());
        let impostor = f.acquire("bus-001", 100).unwrap();
        assert!(!auth.verify(&pairing.master, &impostor).is_accept());
    }

    #[test]
    fn unknown_device_is_none() {
        let f = fleet(1);
        assert!(f.enroll("bus-999", 0).is_none());
        assert!(f.acquire("nope", 0).is_none());
    }

    #[test]
    fn fault_rolls_are_deterministic_and_respect_probability() {
        let f = fleet(3);
        for attempt in 0..4 {
            assert_eq!(
                f.transient_fault("bus-002", 5, attempt, 0.3),
                f.transient_fault("bus-002", 5, attempt, 0.3),
            );
        }
        assert!(!f.transient_fault("bus-000", 1, 0, 0.0));
        let faults = (0..200)
            .filter(|&n| f.transient_fault("bus-001", n, 0, 0.25))
            .count();
        assert!((20..80).contains(&faults), "≈25% expected, got {faults}/200");
    }
}
