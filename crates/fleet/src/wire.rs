//! Length-prefixed binary wire protocol and the TCP transport.
//!
//! Framing: every message is `u32` little-endian payload length followed
//! by the payload; payloads are capped at [`MAX_FRAME`] so a corrupt
//! length cannot allocate unboundedly. Request payloads carry a version
//! byte, a deadline in milliseconds (`0` = server default), a tag, and
//! tag-specific fields; response payloads carry a status byte (`0` ok,
//! else a [`FleetError::code`]) and the body. Strings are `u16` length +
//! UTF-8; `f64`s travel as IEEE-754 bit patterns. No serialization
//! dependency, no allocation beyond the payload buffers.
//!
//! The TCP server is a thin adapter: each connection thread decodes
//! frames, drives the same in-process [`FleetClient`] every local caller
//! uses, and encodes the result — so the wire path exercises exactly the
//! admission, deadline, and retry machinery of [`crate::service`].

use crate::error::FleetError;
use crate::service::{FleetClient, Request, Response};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum frame payload accepted (1 MiB): snapshots of thousands of
/// devices fit with room to spare.
pub const MAX_FRAME: usize = 1 << 20;
/// Wire protocol version.
pub const WIRE_VERSION: u8 = 1;

const TAG_ENROLL: u8 = 1;
const TAG_VERIFY: u8 = 2;
const TAG_SCAN: u8 = 3;
const TAG_SNAPSHOT: u8 = 4;

const RESP_ENROLLED: u8 = 1;
const RESP_VERDICT: u8 = 2;
const RESP_SCAN: u8 = 3;
const RESP_SNAPSHOT: u8 = 4;

/// Write one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors (including clean EOF as `UnexpectedEof`);
/// rejects frames over [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over a payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FleetError> {
        if self.pos + n > self.bytes.len() {
            return Err(FleetError::Protocol("truncated payload".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FleetError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FleetError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, FleetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, FleetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, FleetError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, FleetError> {
        let n = self.u16()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| FleetError::Protocol("string is not UTF-8".into()))
    }

    fn finish(&self) -> Result<(), FleetError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(FleetError::Protocol("trailing bytes in payload".into()))
        }
    }
}

/// Encode a request plus its deadline (`None` = server default).
pub fn encode_request(request: &Request, deadline: Option<Duration>) -> Vec<u8> {
    let mut out = vec![WIRE_VERSION];
    let ms = deadline.map_or(0, |d| d.as_millis().min(u128::from(u32::MAX)) as u32);
    out.extend_from_slice(&ms.to_le_bytes());
    match request {
        Request::Enroll { device, nonce } => {
            out.push(TAG_ENROLL);
            put_str(&mut out, device);
            out.extend_from_slice(&nonce.to_le_bytes());
        }
        Request::Verify { device, nonce } => {
            out.push(TAG_VERIFY);
            put_str(&mut out, device);
            out.extend_from_slice(&nonce.to_le_bytes());
        }
        Request::MonitorScan { device, nonce } => {
            out.push(TAG_SCAN);
            put_str(&mut out, device);
            out.extend_from_slice(&nonce.to_le_bytes());
        }
        Request::RegistrySnapshot => out.push(TAG_SNAPSHOT),
    }
    out
}

/// Decode a request payload into the request and its deadline
/// (`None` = server default).
///
/// # Errors
///
/// Returns [`FleetError::Protocol`] on version mismatch, unknown tags,
/// truncation, or trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<(Request, Option<Duration>), FleetError> {
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != WIRE_VERSION {
        return Err(FleetError::Protocol(format!(
            "unsupported wire version {version}"
        )));
    }
    let ms = c.u32()?;
    let deadline = (ms > 0).then(|| Duration::from_millis(u64::from(ms)));
    let tag = c.u8()?;
    let request = match tag {
        TAG_ENROLL => Request::Enroll {
            device: c.string()?,
            nonce: c.u64()?,
        },
        TAG_VERIFY => Request::Verify {
            device: c.string()?,
            nonce: c.u64()?,
        },
        TAG_SCAN => Request::MonitorScan {
            device: c.string()?,
            nonce: c.u64()?,
        },
        TAG_SNAPSHOT => Request::RegistrySnapshot,
        other => return Err(FleetError::Protocol(format!("unknown request tag {other}"))),
    };
    c.finish()?;
    Ok((request, deadline))
}

/// Encode a service outcome (success or typed error).
pub fn encode_response(outcome: &Result<Response, FleetError>) -> Vec<u8> {
    let mut out = Vec::new();
    match outcome {
        Ok(response) => {
            out.push(0);
            match response {
                Response::Enrolled { device, shard } => {
                    out.push(RESP_ENROLLED);
                    put_str(&mut out, device);
                    out.extend_from_slice(&shard.to_le_bytes());
                }
                Response::Verdict {
                    device,
                    accepted,
                    similarity,
                } => {
                    out.push(RESP_VERDICT);
                    put_str(&mut out, device);
                    out.push(u8::from(*accepted));
                    out.extend_from_slice(&similarity.to_bits().to_le_bytes());
                }
                Response::Scan {
                    device,
                    detected,
                    max_error,
                    location_m,
                } => {
                    out.push(RESP_SCAN);
                    put_str(&mut out, device);
                    out.push(u8::from(*detected));
                    out.extend_from_slice(&max_error.to_bits().to_le_bytes());
                    match location_m {
                        Some(m) => {
                            out.push(1);
                            out.extend_from_slice(&m.to_bits().to_le_bytes());
                        }
                        None => out.push(0),
                    }
                }
                Response::Snapshot { devices } => {
                    out.push(RESP_SNAPSHOT);
                    out.extend_from_slice(&(devices.len() as u32).to_le_bytes());
                    for (name, shard) in devices {
                        put_str(&mut out, name);
                        out.extend_from_slice(&shard.to_le_bytes());
                    }
                }
            }
        }
        Err(err) => {
            out.push(err.code());
            match err {
                FleetError::Overloaded { depth, capacity } => {
                    out.extend_from_slice(&(*depth as u32).to_le_bytes());
                    out.extend_from_slice(&(*capacity as u32).to_le_bytes());
                }
                FleetError::AcquisitionFailed { attempts } => {
                    out.extend_from_slice(&attempts.to_le_bytes());
                }
                FleetError::UnknownDevice(d) => put_str(&mut out, d),
                FleetError::Protocol(m) | FleetError::Io(m) => put_str(&mut out, m),
                FleetError::DeadlineExceeded | FleetError::ShuttingDown => {}
            }
        }
    }
    out
}

/// Decode a response payload back into the service outcome.
///
/// # Errors
///
/// Returns [`FleetError::Protocol`] on malformed payloads (a decoded
/// *typed* service error comes back as `Ok(Err(...))`'s inner value —
/// i.e. the function returns `Err` with the decoded error, which is the
/// outcome the server reported).
pub fn decode_response(payload: &[u8]) -> Result<Response, FleetError> {
    let mut c = Cursor::new(payload);
    let status = c.u8()?;
    if status != 0 {
        let err = match status {
            1 => FleetError::Overloaded {
                depth: c.u32()? as usize,
                capacity: c.u32()? as usize,
            },
            2 => FleetError::DeadlineExceeded,
            3 => FleetError::UnknownDevice(c.string()?),
            4 => FleetError::AcquisitionFailed { attempts: c.u32()? },
            5 => FleetError::ShuttingDown,
            6 => FleetError::Protocol(c.string()?),
            7 => FleetError::Io(c.string()?),
            other => FleetError::Protocol(format!("unknown error code {other}")),
        };
        c.finish()?;
        return Err(err);
    }
    let tag = c.u8()?;
    let response = match tag {
        RESP_ENROLLED => Response::Enrolled {
            device: c.string()?,
            shard: c.u32()?,
        },
        RESP_VERDICT => Response::Verdict {
            device: c.string()?,
            accepted: c.u8()? != 0,
            similarity: c.f64()?,
        },
        RESP_SCAN => Response::Scan {
            device: c.string()?,
            detected: c.u8()? != 0,
            max_error: c.f64()?,
            location_m: if c.u8()? != 0 { Some(c.f64()?) } else { None },
        },
        RESP_SNAPSHOT => {
            let n = c.u32()? as usize;
            let mut devices = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let name = c.string()?;
                devices.push((name, c.u32()?));
            }
            Response::Snapshot { devices }
        }
        other => {
            return Err(FleetError::Protocol(format!(
                "unknown response tag {other}"
            )))
        }
    };
    c.finish()?;
    Ok(response)
}

/// A TCP front end for a fleet service: accepts connections on a
/// loopback (or any) address and serves frames until dropped.
pub struct FleetTcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for FleetTcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTcpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl FleetTcpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections, serving each on its own thread via
    /// the given in-process client.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(client: FleetClient, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("fleet-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let client = client.clone();
                    let _ = std::thread::Builder::new()
                        .name("fleet-conn".into())
                        .spawn(move || serve_connection(stream, &client));
                }
            })?;
        Ok(Self {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (query the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for FleetTcpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Serve one connection: request frame in, response frame out, until the
/// peer hangs up or a transport error occurs.
fn serve_connection(mut stream: TcpStream, client: &FleetClient) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return, // EOF or broken pipe: peer is done.
        };
        divot_telemetry::inc("fleet.tcp.frames");
        let outcome = match decode_request(&payload) {
            Ok((request, Some(deadline))) => client.call_with_deadline(request, deadline),
            Ok((request, None)) => client.call(request),
            Err(e) => Err(e),
        };
        if write_frame(&mut stream, &encode_response(&outcome)).is_err() {
            return;
        }
    }
}

/// A blocking TCP client speaking the fleet wire protocol.
#[derive(Debug)]
pub struct TcpFleetClient {
    stream: TcpStream,
}

impl TcpFleetClient {
    /// Connect to a [`FleetTcpServer`].
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Issue one request under the server's default deadline.
    ///
    /// # Errors
    ///
    /// Typed service errors come back as received; transport failures
    /// surface as [`FleetError::Io`].
    pub fn call(&mut self, request: &Request) -> Result<Response, FleetError> {
        self.call_with_deadline_opt(request, None)
    }

    /// Issue one request with an explicit deadline.
    ///
    /// # Errors
    ///
    /// Same contract as [`call`](Self::call).
    pub fn call_with_deadline(
        &mut self,
        request: &Request,
        deadline: Duration,
    ) -> Result<Response, FleetError> {
        self.call_with_deadline_opt(request, Some(deadline))
    }

    fn call_with_deadline_opt(
        &mut self,
        request: &Request,
        deadline: Option<Duration>,
    ) -> Result<Response, FleetError> {
        write_frame(&mut self.stream, &encode_request(request, deadline))?;
        let payload = read_frame(&mut self.stream)?;
        decode_response(&payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request, deadline: Option<Duration>) {
        let bytes = encode_request(&request, deadline);
        let (back, d) = decode_request(&bytes).unwrap();
        assert_eq!(back, request);
        assert_eq!(d, deadline);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(
            Request::Enroll {
                device: "bus-000".into(),
                nonce: 7,
            },
            None,
        );
        round_trip_request(
            Request::Verify {
                device: "bus-012".into(),
                nonce: u64::MAX,
            },
            Some(Duration::from_millis(1500)),
        );
        round_trip_request(
            Request::MonitorScan {
                device: "ünïcode-bus".into(),
                nonce: 0,
            },
            Some(Duration::from_millis(1)),
        );
        round_trip_request(Request::RegistrySnapshot, None);
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Enrolled {
                device: "bus-000".into(),
                shard: 3,
            },
            Response::Verdict {
                device: "bus-001".into(),
                accepted: true,
                similarity: 0.987654321,
            },
            Response::Scan {
                device: "bus-002".into(),
                detected: true,
                max_error: 1.25e-3,
                location_m: Some(0.125),
            },
            Response::Scan {
                device: "bus-003".into(),
                detected: false,
                max_error: 1e-5,
                location_m: None,
            },
            Response::Snapshot {
                devices: vec![("bus-000".into(), 0), ("bus-001".into(), 5)],
            },
        ];
        for response in cases {
            let bytes = encode_response(&Ok(response.clone()));
            assert_eq!(decode_response(&bytes).unwrap(), response);
        }
    }

    #[test]
    fn similarity_bits_survive_the_wire_exactly() {
        // The determinism tests compare verdicts bitwise across local
        // and TCP paths, so the f64 encoding must be exact — including
        // awkward values.
        for s in [0.1 + 0.2, f64::MIN_POSITIVE, 1.0 - f64::EPSILON] {
            let response = Response::Verdict {
                device: "b".into(),
                accepted: true,
                similarity: s,
            };
            match decode_response(&encode_response(&Ok(response))).unwrap() {
                Response::Verdict { similarity, .. } => {
                    assert_eq!(similarity.to_bits(), s.to_bits());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn errors_round_trip() {
        let cases = [
            FleetError::Overloaded {
                depth: 9,
                capacity: 8,
            },
            FleetError::DeadlineExceeded,
            FleetError::UnknownDevice("ghost".into()),
            FleetError::AcquisitionFailed { attempts: 5 },
            FleetError::ShuttingDown,
            FleetError::Protocol("bad tag".into()),
            FleetError::Io("broken pipe".into()),
        ];
        for err in cases {
            let bytes = encode_response(&Err(err.clone()));
            assert_eq!(decode_response(&bytes).unwrap_err(), err);
        }
    }

    #[test]
    fn malformed_payloads_are_protocol_errors() {
        assert!(matches!(
            decode_request(&[]),
            Err(FleetError::Protocol(_))
        ));
        assert!(matches!(
            decode_request(&[99, 0, 0, 0, 0, TAG_SNAPSHOT]),
            Err(FleetError::Protocol(msg)) if msg.contains("version")
        ));
        // Unknown tag.
        assert!(matches!(
            decode_request(&[WIRE_VERSION, 0, 0, 0, 0, 200]),
            Err(FleetError::Protocol(msg)) if msg.contains("tag")
        ));
        // Trailing garbage.
        let mut bytes = encode_request(&Request::RegistrySnapshot, None);
        bytes.push(0);
        assert!(matches!(
            decode_request(&bytes),
            Err(FleetError::Protocol(msg)) if msg.contains("trailing")
        ));
        // Truncations of a valid request all fail cleanly.
        let bytes = encode_request(
            &Request::Verify {
                device: "bus-000".into(),
                nonce: 1,
            },
            Some(Duration::from_millis(10)),
        );
        for cut in 0..bytes.len() {
            assert!(
                decode_request(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");

        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut Vec::new(), &huge).is_err());

        // A corrupt length header cannot cause a huge allocation.
        let mut bad = (MAX_FRAME as u32 + 1).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0; 8]);
        assert!(read_frame(&mut &bad[..]).is_err());
    }
}
