//! Length-prefixed binary wire protocol and the TCP transport.
//!
//! Framing: every message is `u32` little-endian payload length followed
//! by the payload; payloads are capped at [`MAX_FRAME`] so a corrupt
//! length cannot allocate unboundedly. Request payloads carry a version
//! byte, a deadline in milliseconds (`0` = server default), a tag, and
//! tag-specific fields; response payloads carry a status byte (`0` ok,
//! else a [`FleetError::code`]) and the body. Strings are `u16` length +
//! UTF-8; `f64`s travel as IEEE-754 bit patterns. No serialization
//! dependency, no allocation beyond the payload buffers.
//!
//! Two protocol versions share the framing:
//!
//! - **v1** ([`WIRE_VERSION`]): one plain request per frame, bare
//!   responses in request order — the [`TcpFleetClient`] contract.
//! - **v2** ([`WIRE_VERSION_PIPELINED`]): requests carry a client-chosen
//!   id; responses come back as [`ENVELOPE`]-marked events in
//!   *completion* order, so many requests ride one connection
//!   concurrently ([`PipelinedFleetClient`]). v2 also adds streaming
//!   `MonitorScan` subscriptions: the server pushes scan frames on an
//!   interval until the frame budget runs out or the client
//!   unsubscribes.
//!
//! The TCP servers are thin adapters over the same in-process
//! [`FleetClient`] every local caller uses, so the wire path exercises
//! exactly the admission, deadline, and retry machinery of
//! [`crate::service`]. [`FleetTcpServer::spawn`] runs the poll-based
//! reactor ([`crate::reactor`]); [`FleetTcpServer::spawn_threaded`] is
//! the original thread-per-connection transport, kept as the
//! byte-equivalence reference.

use crate::error::{FleetError, ShedReason};
use crate::service::{FleetClient, FleetStats, IntakeReport, Request, Response};
use divot_cohort::Verdict;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum frame payload accepted (1 MiB): snapshots of thousands of
/// devices fit with room to spare.
pub const MAX_FRAME: usize = 1 << 20;
/// Wire protocol version 1: one plain request per frame, responses in
/// request order.
pub const WIRE_VERSION: u8 = 1;
/// Wire protocol version 2: pipelined — requests carry a client-chosen
/// id, responses come back as enveloped events in completion order, and
/// connections may hold streaming scan subscriptions.
pub const WIRE_VERSION_PIPELINED: u8 = 2;

const TAG_ENROLL: u8 = 1;
const TAG_VERIFY: u8 = 2;
const TAG_SCAN: u8 = 3;
const TAG_SNAPSHOT: u8 = 4;
const TAG_ENROLL_BATCH: u8 = 5;
const TAG_STATS: u8 = 6;
const TAG_COHORT_ENROLL: u8 = 7;
const TAG_INTAKE: u8 = 8;

const RESP_ENROLLED: u8 = 1;
const RESP_VERDICT: u8 = 2;
const RESP_SCAN: u8 = 3;
const RESP_SNAPSHOT: u8 = 4;
const RESP_ENROLLED_BATCH: u8 = 5;
const RESP_STATS: u8 = 6;
const RESP_COHORT_MODEL: u8 = 7;
const RESP_INTAKE: u8 = 8;

/// v2 request kinds (byte after the version byte).
const REQ2_TAGGED: u8 = 1;
const REQ2_SUBSCRIBE: u8 = 2;
const REQ2_UNSUBSCRIBE: u8 = 3;
const REQ2_STATS_SUBSCRIBE: u8 = 4;

/// First byte of every enveloped (v2) server→client frame. Plain v1
/// responses start with a status byte (`0` or a small
/// [`FleetError::code`]), so the envelope marker makes the two stream
/// formats self-distinguishing even on a mixed connection.
pub const ENVELOPE: u8 = 0xE2;

/// v2 event kinds (byte after the envelope marker).
const EV_REPLY: u8 = 1;
const EV_SUB_ACK: u8 = 2;
const EV_SCAN_FRAME: u8 = 3;
const EV_SUB_END: u8 = 4;
const EV_STATS_FRAME: u8 = 5;

/// Write one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors (including clean EOF as `UnexpectedEof`);
/// rejects frames over [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over a payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FleetError> {
        if self.pos + n > self.bytes.len() {
            return Err(FleetError::Protocol("truncated payload".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FleetError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FleetError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, FleetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, FleetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, FleetError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, FleetError> {
        let n = self.u16()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| FleetError::Protocol("string is not UTF-8".into()))
    }

    fn finish(&self) -> Result<(), FleetError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(FleetError::Protocol("trailing bytes in payload".into()))
        }
    }
}

/// Encode a request plus its deadline (`None` = server default).
pub fn encode_request(request: &Request, deadline: Option<Duration>) -> Vec<u8> {
    let mut out = vec![WIRE_VERSION];
    let ms = deadline.map_or(0, |d| d.as_millis().min(u128::from(u32::MAX)) as u32);
    out.extend_from_slice(&ms.to_le_bytes());
    put_request_body(&mut out, request);
    out
}

/// Decode a request payload into the request and its deadline
/// (`None` = server default).
///
/// # Errors
///
/// Returns [`FleetError::Protocol`] on version mismatch, unknown tags,
/// truncation, or trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<(Request, Option<Duration>), FleetError> {
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != WIRE_VERSION {
        return Err(FleetError::Protocol(format!(
            "unsupported wire version {version}"
        )));
    }
    let ms = c.u32()?;
    let deadline = (ms > 0).then(|| Duration::from_millis(u64::from(ms)));
    let request = take_request_body(&mut c)?;
    c.finish()?;
    Ok((request, deadline))
}

/// Encode a service outcome (success or typed error).
pub fn encode_response(outcome: &Result<Response, FleetError>) -> Vec<u8> {
    let mut out = Vec::new();
    match outcome {
        Ok(response) => {
            out.push(0);
            match response {
                Response::Enrolled { device, shard } => {
                    out.push(RESP_ENROLLED);
                    put_str(&mut out, device);
                    out.extend_from_slice(&shard.to_le_bytes());
                }
                Response::Verdict {
                    device,
                    accepted,
                    similarity,
                } => {
                    out.push(RESP_VERDICT);
                    put_str(&mut out, device);
                    out.push(u8::from(*accepted));
                    out.extend_from_slice(&similarity.to_bits().to_le_bytes());
                }
                Response::Scan {
                    device,
                    detected,
                    max_error,
                    location_m,
                } => {
                    out.push(RESP_SCAN);
                    put_str(&mut out, device);
                    out.push(u8::from(*detected));
                    out.extend_from_slice(&max_error.to_bits().to_le_bytes());
                    match location_m {
                        Some(m) => {
                            out.push(1);
                            out.extend_from_slice(&m.to_bits().to_le_bytes());
                        }
                        None => out.push(0),
                    }
                }
                Response::Snapshot { devices } => {
                    out.push(RESP_SNAPSHOT);
                    out.extend_from_slice(&(devices.len() as u32).to_le_bytes());
                    for (name, shard) in devices {
                        put_str(&mut out, name);
                        out.extend_from_slice(&shard.to_le_bytes());
                    }
                }
                Response::EnrolledBatch { devices } => {
                    out.push(RESP_ENROLLED_BATCH);
                    out.extend_from_slice(&(devices.len() as u32).to_le_bytes());
                    for (name, shard) in devices {
                        put_str(&mut out, name);
                        out.extend_from_slice(&shard.to_le_bytes());
                    }
                }
                Response::CohortModel {
                    cohort_size,
                    excluded,
                    segments,
                } => {
                    out.push(RESP_COHORT_MODEL);
                    out.extend_from_slice(&cohort_size.to_le_bytes());
                    out.extend_from_slice(&excluded.to_le_bytes());
                    out.extend_from_slice(&segments.to_le_bytes());
                }
                Response::Intake { reports } => {
                    out.push(RESP_INTAKE);
                    out.extend_from_slice(&(reports.len() as u32).to_le_bytes());
                    for r in reports {
                        put_str(&mut out, &r.device);
                        out.push(r.verdict.code());
                        out.extend_from_slice(&r.score.to_bits().to_le_bytes());
                        out.extend_from_slice(&r.similarity.to_bits().to_le_bytes());
                        out.extend_from_slice(&r.max_z.to_bits().to_le_bytes());
                        out.extend_from_slice(&r.deviant_segments.to_le_bytes());
                        out.extend_from_slice(&r.worst_segment.to_le_bytes());
                    }
                }
                Response::StatsSnapshot { stats } => {
                    out.push(RESP_STATS);
                    out.extend_from_slice(&stats.queue_depth.to_le_bytes());
                    out.extend_from_slice(&stats.queue_capacity.to_le_bytes());
                    out.extend_from_slice(&(stats.counters.len() as u32).to_le_bytes());
                    for (name, v) in &stats.counters {
                        put_str(&mut out, name);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    out.extend_from_slice(&(stats.gauges.len() as u32).to_le_bytes());
                    for (name, v) in &stats.gauges {
                        put_str(&mut out, name);
                        out.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                    out.extend_from_slice(&(stats.histograms.len() as u32).to_le_bytes());
                    for (name, count, p50, p90, p99) in &stats.histograms {
                        put_str(&mut out, name);
                        out.extend_from_slice(&count.to_le_bytes());
                        out.extend_from_slice(&p50.to_bits().to_le_bytes());
                        out.extend_from_slice(&p90.to_bits().to_le_bytes());
                        out.extend_from_slice(&p99.to_bits().to_le_bytes());
                    }
                }
            }
        }
        Err(err) => {
            out.push(err.code());
            match err {
                FleetError::Overloaded {
                    depth,
                    capacity,
                    reason,
                } => {
                    out.extend_from_slice(&(*depth as u32).to_le_bytes());
                    out.extend_from_slice(&(*capacity as u32).to_le_bytes());
                    out.push(reason.code());
                }
                FleetError::AcquisitionFailed { attempts } => {
                    out.extend_from_slice(&attempts.to_le_bytes());
                }
                FleetError::UnknownDevice(d) => put_str(&mut out, d),
                FleetError::Protocol(m) | FleetError::Io(m) | FleetError::CohortRejected(m) => {
                    put_str(&mut out, m)
                }
                FleetError::DeadlineExceeded
                | FleetError::ShuttingDown
                | FleetError::NoCohortModel => {}
            }
        }
    }
    out
}

/// Decode a response payload back into the service outcome.
///
/// # Errors
///
/// Returns [`FleetError::Protocol`] on malformed payloads (a decoded
/// *typed* service error comes back as `Ok(Err(...))`'s inner value —
/// i.e. the function returns `Err` with the decoded error, which is the
/// outcome the server reported).
pub fn decode_response(payload: &[u8]) -> Result<Response, FleetError> {
    let mut c = Cursor::new(payload);
    let status = c.u8()?;
    if status != 0 {
        let err = match status {
            1 => FleetError::Overloaded {
                depth: c.u32()? as usize,
                capacity: c.u32()? as usize,
                reason: ShedReason::from_code(c.u8()?)?,
            },
            2 => FleetError::DeadlineExceeded,
            3 => FleetError::UnknownDevice(c.string()?),
            4 => FleetError::AcquisitionFailed { attempts: c.u32()? },
            5 => FleetError::ShuttingDown,
            6 => FleetError::Protocol(c.string()?),
            7 => FleetError::Io(c.string()?),
            8 => FleetError::NoCohortModel,
            9 => FleetError::CohortRejected(c.string()?),
            other => FleetError::Protocol(format!("unknown error code {other}")),
        };
        c.finish()?;
        return Err(err);
    }
    let tag = c.u8()?;
    let response = match tag {
        RESP_ENROLLED => Response::Enrolled {
            device: c.string()?,
            shard: c.u32()?,
        },
        RESP_VERDICT => Response::Verdict {
            device: c.string()?,
            accepted: c.u8()? != 0,
            similarity: c.f64()?,
        },
        RESP_SCAN => Response::Scan {
            device: c.string()?,
            detected: c.u8()? != 0,
            max_error: c.f64()?,
            location_m: if c.u8()? != 0 { Some(c.f64()?) } else { None },
        },
        RESP_SNAPSHOT => {
            let n = c.u32()? as usize;
            let mut devices = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let name = c.string()?;
                devices.push((name, c.u32()?));
            }
            Response::Snapshot { devices }
        }
        RESP_ENROLLED_BATCH => {
            let n = c.u32()? as usize;
            let mut devices = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let name = c.string()?;
                devices.push((name, c.u32()?));
            }
            Response::EnrolledBatch { devices }
        }
        RESP_COHORT_MODEL => Response::CohortModel {
            cohort_size: c.u32()?,
            excluded: c.u32()?,
            segments: c.u32()?,
        },
        RESP_INTAKE => {
            let n = c.u32()? as usize;
            let mut reports = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let device = c.string()?;
                let code = c.u8()?;
                let verdict = Verdict::from_code(code).ok_or_else(|| {
                    FleetError::Protocol(format!("unknown verdict code {code}"))
                })?;
                reports.push(IntakeReport {
                    device,
                    verdict,
                    score: c.f64()?,
                    similarity: c.f64()?,
                    max_z: c.f64()?,
                    deviant_segments: c.u32()?,
                    worst_segment: c.u32()?,
                });
            }
            Response::Intake { reports }
        }
        RESP_STATS => {
            let mut stats = FleetStats {
                queue_depth: c.u32()?,
                queue_capacity: c.u32()?,
                ..FleetStats::default()
            };
            for _ in 0..c.u32()? {
                let name = c.string()?;
                stats.counters.push((name, c.u64()?));
            }
            for _ in 0..c.u32()? {
                let name = c.string()?;
                stats.gauges.push((name, c.f64()?));
            }
            for _ in 0..c.u32()? {
                let name = c.string()?;
                stats
                    .histograms
                    .push((name, c.u64()?, c.f64()?, c.f64()?, c.f64()?));
            }
            Response::StatsSnapshot { stats }
        }
        other => {
            return Err(FleetError::Protocol(format!(
                "unknown response tag {other}"
            )))
        }
    };
    c.finish()?;
    Ok(response)
}

// ---------------------------------------------------------------------
// v2: pipelined requests, enveloped events, streaming subscriptions.
// ---------------------------------------------------------------------

/// Any request frame a server connection can receive, across both wire
/// versions.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// A v1 request: unpipelined, answered in arrival order with a bare
    /// response frame.
    Plain {
        /// The request.
        request: Request,
        /// Explicit deadline, `None` = server default.
        deadline: Option<Duration>,
    },
    /// A v2 pipelined request: answered with an enveloped reply carrying
    /// `id` back, in completion (not arrival) order.
    Tagged {
        /// Client-chosen correlation id.
        id: u64,
        /// The request.
        request: Request,
        /// Explicit deadline, `None` = server default.
        deadline: Option<Duration>,
    },
    /// Register a streaming MonitorScan subscription: the server pushes
    /// one scan frame per interval, each acquired under
    /// [`crate::sim::subscription_nonce`]`(base_nonce, seq)`.
    Subscribe {
        /// Client-chosen subscription id (scan frames carry it back).
        id: u64,
        /// Device to watch.
        device: String,
        /// Base nonce the per-frame nonces derive from.
        base_nonce: u64,
        /// Push interval.
        interval: Duration,
        /// Frames to push before the server ends the subscription
        /// (`0` = unbounded, until unsubscribe or disconnect).
        max_frames: u32,
    },
    /// Register a streaming stats subscription: the server pushes one
    /// [`WireEvent::StatsFrame`] per interval — the operator-dashboard
    /// feed. Cancelled by the same [`WireRequest::Unsubscribe`] as scan
    /// subscriptions (ids share one namespace per connection).
    StatsSubscribe {
        /// Client-chosen subscription id (stats frames carry it back).
        id: u64,
        /// Push interval.
        interval: Duration,
        /// Frames to push before the server ends the subscription
        /// (`0` = unbounded, until unsubscribe or disconnect).
        max_frames: u32,
    },
    /// Cancel a subscription by its id.
    Unsubscribe {
        /// Correlation id of this request (unused in the reply path —
        /// the end-of-stream event carries `target`).
        id: u64,
        /// The subscription id to cancel.
        target: u64,
    },
}

/// Encode a v2 tagged request.
pub fn encode_request_tagged(id: u64, request: &Request, deadline: Option<Duration>) -> Vec<u8> {
    let mut out = vec![WIRE_VERSION_PIPELINED, REQ2_TAGGED];
    out.extend_from_slice(&id.to_le_bytes());
    let ms = deadline.map_or(0, |d| d.as_millis().min(u128::from(u32::MAX)) as u32);
    out.extend_from_slice(&ms.to_le_bytes());
    put_request_body(&mut out, request);
    out
}

/// Encode a v2 subscribe request.
pub fn encode_subscribe(
    id: u64,
    device: &str,
    base_nonce: u64,
    interval: Duration,
    max_frames: u32,
) -> Vec<u8> {
    let mut out = vec![WIRE_VERSION_PIPELINED, REQ2_SUBSCRIBE];
    out.extend_from_slice(&id.to_le_bytes());
    put_str(&mut out, device);
    out.extend_from_slice(&base_nonce.to_le_bytes());
    let ms = interval.as_millis().min(u128::from(u32::MAX)) as u32;
    out.extend_from_slice(&ms.to_le_bytes());
    out.extend_from_slice(&max_frames.to_le_bytes());
    out
}

/// Encode a v2 stats-subscribe request.
pub fn encode_stats_subscribe(id: u64, interval: Duration, max_frames: u32) -> Vec<u8> {
    let mut out = vec![WIRE_VERSION_PIPELINED, REQ2_STATS_SUBSCRIBE];
    out.extend_from_slice(&id.to_le_bytes());
    let ms = interval.as_millis().min(u128::from(u32::MAX)) as u32;
    out.extend_from_slice(&ms.to_le_bytes());
    out.extend_from_slice(&max_frames.to_le_bytes());
    out
}

/// Encode a v2 unsubscribe request.
pub fn encode_unsubscribe(id: u64, target: u64) -> Vec<u8> {
    let mut out = vec![WIRE_VERSION_PIPELINED, REQ2_UNSUBSCRIBE];
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&target.to_le_bytes());
    out
}

/// The tag + fields of a request (shared by v1 and v2 encodings).
fn put_request_body(out: &mut Vec<u8>, request: &Request) {
    match request {
        Request::Enroll { device, nonce } => {
            out.push(TAG_ENROLL);
            put_str(out, device);
            out.extend_from_slice(&nonce.to_le_bytes());
        }
        Request::Verify { device, nonce } => {
            out.push(TAG_VERIFY);
            put_str(out, device);
            out.extend_from_slice(&nonce.to_le_bytes());
        }
        Request::MonitorScan { device, nonce } => {
            out.push(TAG_SCAN);
            put_str(out, device);
            out.extend_from_slice(&nonce.to_le_bytes());
        }
        Request::RegistrySnapshot => out.push(TAG_SNAPSHOT),
        Request::EnrollBatch { devices } => put_batch_rows(out, TAG_ENROLL_BATCH, devices),
        Request::CohortEnroll { devices } => put_batch_rows(out, TAG_COHORT_ENROLL, devices),
        Request::IntakeScan { devices } => put_batch_rows(out, TAG_INTAKE, devices),
        Request::Stats => out.push(TAG_STATS),
    }
}

/// The shared `(device, nonce)`-rows body of the batch request kinds.
fn put_batch_rows(out: &mut Vec<u8>, tag: u8, devices: &[(String, u64)]) {
    out.push(tag);
    out.extend_from_slice(&(devices.len() as u32).to_le_bytes());
    for (device, nonce) in devices {
        put_str(out, device);
        out.extend_from_slice(&nonce.to_le_bytes());
    }
}

/// Decode the `(device, nonce)` rows of a batch request body.
fn take_batch_rows(c: &mut Cursor<'_>) -> Result<Vec<(String, u64)>, FleetError> {
    let n = c.u32()? as usize;
    let mut devices = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let device = c.string()?;
        devices.push((device, c.u64()?));
    }
    Ok(devices)
}

fn take_request_body(c: &mut Cursor<'_>) -> Result<Request, FleetError> {
    let tag = c.u8()?;
    Ok(match tag {
        TAG_ENROLL => Request::Enroll {
            device: c.string()?,
            nonce: c.u64()?,
        },
        TAG_VERIFY => Request::Verify {
            device: c.string()?,
            nonce: c.u64()?,
        },
        TAG_SCAN => Request::MonitorScan {
            device: c.string()?,
            nonce: c.u64()?,
        },
        TAG_SNAPSHOT => Request::RegistrySnapshot,
        TAG_ENROLL_BATCH => Request::EnrollBatch {
            devices: take_batch_rows(c)?,
        },
        TAG_COHORT_ENROLL => Request::CohortEnroll {
            devices: take_batch_rows(c)?,
        },
        TAG_INTAKE => Request::IntakeScan {
            devices: take_batch_rows(c)?,
        },
        TAG_STATS => Request::Stats,
        other => return Err(FleetError::Protocol(format!("unknown request tag {other}"))),
    })
}

/// Decode any request frame, v1 or v2.
///
/// # Errors
///
/// Returns [`FleetError::Protocol`] on unknown versions/kinds/tags,
/// truncation, or trailing bytes.
pub fn decode_wire_request(payload: &[u8]) -> Result<WireRequest, FleetError> {
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    match version {
        WIRE_VERSION => {
            let (request, deadline) = decode_request(payload)?;
            Ok(WireRequest::Plain { request, deadline })
        }
        WIRE_VERSION_PIPELINED => {
            let kind = c.u8()?;
            let decoded = match kind {
                REQ2_TAGGED => {
                    let id = c.u64()?;
                    let ms = c.u32()?;
                    let deadline = (ms > 0).then(|| Duration::from_millis(u64::from(ms)));
                    let request = take_request_body(&mut c)?;
                    WireRequest::Tagged {
                        id,
                        request,
                        deadline,
                    }
                }
                REQ2_SUBSCRIBE => WireRequest::Subscribe {
                    id: c.u64()?,
                    device: c.string()?,
                    base_nonce: c.u64()?,
                    interval: Duration::from_millis(u64::from(c.u32()?)),
                    max_frames: c.u32()?,
                },
                REQ2_UNSUBSCRIBE => WireRequest::Unsubscribe {
                    id: c.u64()?,
                    target: c.u64()?,
                },
                REQ2_STATS_SUBSCRIBE => WireRequest::StatsSubscribe {
                    id: c.u64()?,
                    interval: Duration::from_millis(u64::from(c.u32()?)),
                    max_frames: c.u32()?,
                },
                other => {
                    return Err(FleetError::Protocol(format!(
                        "unknown v2 request kind {other}"
                    )))
                }
            };
            c.finish()?;
            Ok(decoded)
        }
        other => Err(FleetError::Protocol(format!(
            "unsupported wire version {other}"
        ))),
    }
}

/// Any server→client frame, across both wire versions.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// A bare v1 response (answer to a [`WireRequest::Plain`]).
    Plain(Box<Result<Response, FleetError>>),
    /// The enveloped answer to a [`WireRequest::Tagged`].
    Reply {
        /// The id the request carried.
        id: u64,
        /// The outcome, exactly as a blocking caller would see it.
        outcome: Box<Result<Response, FleetError>>,
    },
    /// The server accepted a subscription.
    SubAck {
        /// The subscription id.
        id: u64,
        /// The interval the server will push at.
        interval: Duration,
    },
    /// One pushed scan frame of a subscription.
    ScanFrame {
        /// The subscription id.
        id: u64,
        /// Frame sequence number (0-based).
        seq: u64,
        /// The scan outcome (bitwise what an explicit `MonitorScan`
        /// under the derived nonce returns).
        outcome: Box<Result<Response, FleetError>>,
    },
    /// One pushed stats frame of a stats subscription.
    StatsFrame {
        /// The subscription id.
        id: u64,
        /// Frame sequence number (0-based).
        seq: u64,
        /// The stats outcome (bitwise what an explicit
        /// [`Request::Stats`] at the push instant returns).
        outcome: Box<Result<Response, FleetError>>,
    },
    /// A subscription ended (frame budget exhausted, unsubscribe, or
    /// device error).
    SubEnd {
        /// The subscription id.
        id: u64,
        /// Total frames pushed over its lifetime.
        frames: u64,
    },
}

/// Encode the enveloped answer to a tagged request.
pub fn encode_tagged_response(id: u64, outcome: &Result<Response, FleetError>) -> Vec<u8> {
    let mut out = vec![ENVELOPE, EV_REPLY];
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&encode_response(outcome));
    out
}

/// Encode a subscription acknowledgement.
pub fn encode_sub_ack(id: u64, interval: Duration) -> Vec<u8> {
    let mut out = vec![ENVELOPE, EV_SUB_ACK];
    out.extend_from_slice(&id.to_le_bytes());
    let ms = interval.as_millis().min(u128::from(u32::MAX)) as u32;
    out.extend_from_slice(&ms.to_le_bytes());
    out
}

/// Encode one pushed scan frame.
pub fn encode_scan_frame(id: u64, seq: u64, outcome: &Result<Response, FleetError>) -> Vec<u8> {
    let mut out = vec![ENVELOPE, EV_SCAN_FRAME];
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&encode_response(outcome));
    out
}

/// Encode one pushed stats frame.
pub fn encode_stats_frame(id: u64, seq: u64, outcome: &Result<Response, FleetError>) -> Vec<u8> {
    let mut out = vec![ENVELOPE, EV_STATS_FRAME];
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&encode_response(outcome));
    out
}

/// Encode a subscription end-of-stream marker.
pub fn encode_sub_end(id: u64, frames: u64) -> Vec<u8> {
    let mut out = vec![ENVELOPE, EV_SUB_END];
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&frames.to_le_bytes());
    out
}

/// Decode any server→client frame (bare v1 response or v2 envelope).
///
/// # Errors
///
/// Returns [`FleetError::Protocol`] on malformed payloads. A decoded
/// *typed* service error is carried inside the event, not returned as
/// this function's `Err`.
pub fn decode_event(payload: &[u8]) -> Result<WireEvent, FleetError> {
    if payload.first() != Some(&ENVELOPE) {
        return Ok(WireEvent::Plain(Box::new(decode_response(payload))));
    }
    let mut c = Cursor::new(payload);
    c.u8()?; // envelope marker
    let kind = c.u8()?;
    match kind {
        EV_REPLY => {
            let id = c.u64()?;
            let outcome = decode_outcome(&payload[c.pos..])?;
            Ok(WireEvent::Reply {
                id,
                outcome: Box::new(outcome),
            })
        }
        EV_SUB_ACK => {
            let id = c.u64()?;
            let interval = Duration::from_millis(u64::from(c.u32()?));
            c.finish()?;
            Ok(WireEvent::SubAck { id, interval })
        }
        EV_SCAN_FRAME => {
            let id = c.u64()?;
            let seq = c.u64()?;
            let outcome = decode_outcome(&payload[c.pos..])?;
            Ok(WireEvent::ScanFrame {
                id,
                seq,
                outcome: Box::new(outcome),
            })
        }
        EV_STATS_FRAME => {
            let id = c.u64()?;
            let seq = c.u64()?;
            let outcome = decode_outcome(&payload[c.pos..])?;
            Ok(WireEvent::StatsFrame {
                id,
                seq,
                outcome: Box::new(outcome),
            })
        }
        EV_SUB_END => {
            let id = c.u64()?;
            let frames = c.u64()?;
            c.finish()?;
            Ok(WireEvent::SubEnd { id, frames })
        }
        other => Err(FleetError::Protocol(format!("unknown event kind {other}"))),
    }
}

/// Decode a response tail, keeping malformed-payload errors (`Protocol`
/// from the decoder itself) distinguishable from decoded typed errors.
fn decode_outcome(tail: &[u8]) -> Result<Result<Response, FleetError>, FleetError> {
    match decode_response(tail) {
        Ok(r) => Ok(Ok(r)),
        // An encoded Protocol error and a local decode failure are the
        // same variant; treating both as the carried outcome is safe —
        // either way the caller sees a Protocol error for this event.
        Err(e) => Ok(Err(e)),
    }
}

/// An incremental frame decoder over a growing byte buffer: feed it
/// arbitrarily-chunked reads, pull complete frames out. The reactor
/// keeps one per connection; a frame may straddle any number of reads.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append freshly-read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pop the next complete frame payload, if one is fully buffered.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Protocol`] when the next length prefix
    /// exceeds [`MAX_FRAME`] — the stream is unrecoverable from here and
    /// the connection must be killed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FleetError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.start..self.start + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        if len > MAX_FRAME {
            return Err(FleetError::Protocol(format!(
                "frame of {len} bytes exceeds MAX_FRAME"
            )));
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let frame = self.buf[self.start + 4..self.start + 4 + len].to_vec();
        self.start += 4 + len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(frame))
    }

    /// Reclaim consumed prefix space once it dominates the buffer.
    fn compact(&mut self) {
        if self.start > 0 && (self.start >= self.buf.len() || self.start > (64 << 10)) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// A TCP front end for a fleet service: accepts connections on a
/// loopback (or any) address and serves frames until dropped.
///
/// Two transports share this handle:
///
/// - [`spawn`](Self::spawn) — the poll-based reactor: one thread
///   multiplexes every connection (nonblocking sockets + readiness
///   loop), with pipelining, same-device verify coalescing, inline
///   verdict-cache serving, fair-share admission, and streaming scan
///   subscriptions. See [`crate::reactor`].
/// - [`spawn_threaded`](Self::spawn_threaded) — the original
///   thread-per-connection blocking server, kept as the equivalence
///   reference: the reactor must produce byte-identical responses for
///   identical request sequences.
pub struct FleetTcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    /// `Some` for the reactor transport: dropping notifies the loop
    /// instead of poking it with a throwaway connection.
    poller: Option<Arc<divot_polling::Poller>>,
}

impl std::fmt::Debug for FleetTcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTcpServer")
            .field("addr", &self.addr)
            .field("reactor", &self.poller.is_some())
            .finish()
    }
}

impl FleetTcpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve every connection from one poll-based reactor thread.
    ///
    /// # Errors
    ///
    /// Propagates bind/poller-creation failures.
    pub fn spawn(client: FleetClient, addr: &str) -> std::io::Result<Self> {
        Self::spawn_reactor(client, addr, crate::reactor::ReactorConfig::default())
    }

    /// [`spawn`](Self::spawn) with explicit reactor tuning.
    ///
    /// # Errors
    ///
    /// Propagates bind/poller-creation failures.
    pub fn spawn_reactor(
        client: FleetClient,
        addr: &str,
        config: crate::reactor::ReactorConfig,
    ) -> std::io::Result<Self> {
        let handle = crate::reactor::spawn(client, addr, config)?;
        Ok(Self {
            addr: handle.addr,
            shutdown: handle.shutdown,
            thread: Some(handle.thread),
            poller: Some(handle.poller),
        })
    }

    /// Bind `addr` and serve each connection on its own blocking thread
    /// — the pre-reactor transport, retained as the byte-equivalence
    /// reference and for A/B benchmarking.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn_threaded(client: FleetClient, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("fleet-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let client = client.clone();
                    let _ = std::thread::Builder::new()
                        .name("fleet-conn".into())
                        .spawn(move || serve_connection(stream, &client));
                }
            })?;
        Ok(Self {
            addr,
            shutdown,
            thread: Some(thread),
            poller: None,
        })
    }

    /// The bound address (query the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for FleetTcpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        match &self.poller {
            Some(p) => p.notify(),
            // Unblock the blocking accept loop with a throwaway
            // connection.
            None => drop(TcpStream::connect(self.addr)),
        }
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

/// Serve one blocking connection: request frame in, response frame out,
/// until the peer hangs up or a transport error occurs. Understands v1
/// plain and v2 tagged requests (strictly serially — pipelining needs
/// the reactor); subscription frames are answered with a typed error.
fn serve_connection(mut stream: TcpStream, client: &FleetClient) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return, // EOF or broken pipe: peer is done.
        };
        divot_telemetry::inc("fleet.tcp.frames");
        let call = |request: Request, deadline: Option<Duration>| match deadline {
            Some(d) => client.call_with_deadline(request, d),
            None => client.call(request),
        };
        let reply = match decode_wire_request(&payload) {
            Ok(WireRequest::Plain { request, deadline }) => {
                encode_response(&call(request, deadline))
            }
            Ok(WireRequest::Tagged {
                id,
                request,
                deadline,
            }) => encode_tagged_response(id, &call(request, deadline)),
            Ok(WireRequest::Subscribe { id, .. } | WireRequest::StatsSubscribe { id, .. }) => {
                encode_tagged_response(
                    id,
                    &Err(FleetError::Protocol(
                        "subscriptions require the reactor transport".into(),
                    )),
                )
            }
            Ok(WireRequest::Unsubscribe { id, .. }) => encode_tagged_response(
                id,
                &Err(FleetError::Protocol(
                    "subscriptions require the reactor transport".into(),
                )),
            ),
            Err(e) => encode_response(&Err(e)),
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// A blocking *pipelined* TCP client speaking wire v2: many tagged
/// requests in flight on one connection, events received in completion
/// order. Send and receive halves share the socket but not a lock —
/// interleave [`send`](Self::send)/[`send_batch`](Self::send_batch)
/// with [`recv_event`](Self::recv_event) as the workload requires.
#[derive(Debug)]
pub struct PipelinedFleetClient {
    stream: TcpStream,
    frames: FrameBuffer,
    next_id: u64,
}

impl PipelinedFleetClient {
    /// Connect to a [`FleetTcpServer`].
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            frames: FrameBuffer::new(),
            next_id: 0,
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Fire one tagged request without waiting; returns the id its
    /// reply will carry.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`FleetError::Io`].
    pub fn send(
        &mut self,
        request: &Request,
        deadline: Option<Duration>,
    ) -> Result<u64, FleetError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &encode_request_tagged(id, request, deadline),
        )?;
        Ok(id)
    }

    /// Fire a batch of tagged requests as one vectored write (a single
    /// syscall carries the whole pipeline window).
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`FleetError::Io`].
    pub fn send_batch(
        &mut self,
        requests: &[(Request, Option<Duration>)],
    ) -> Result<Vec<u64>, FleetError> {
        let mut ids = Vec::with_capacity(requests.len());
        let mut wire = Vec::new();
        for (request, deadline) in requests {
            let id = self.fresh_id();
            let payload = encode_request_tagged(id, request, *deadline);
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(&payload);
            ids.push(id);
        }
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        Ok(ids)
    }

    /// Register a streaming scan subscription; returns its id. The
    /// server answers with [`WireEvent::SubAck`], then pushes
    /// [`WireEvent::ScanFrame`]s.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`FleetError::Io`].
    pub fn subscribe(
        &mut self,
        device: &str,
        base_nonce: u64,
        interval: Duration,
        max_frames: u32,
    ) -> Result<u64, FleetError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &encode_subscribe(id, device, base_nonce, interval, max_frames),
        )?;
        Ok(id)
    }

    /// Register a streaming stats subscription; returns its id. The
    /// server answers with [`WireEvent::SubAck`], then pushes
    /// [`WireEvent::StatsFrame`]s (reactor transport only).
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`FleetError::Io`].
    pub fn subscribe_stats(
        &mut self,
        interval: Duration,
        max_frames: u32,
    ) -> Result<u64, FleetError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &encode_stats_subscribe(id, interval, max_frames),
        )?;
        Ok(id)
    }

    /// One blocking stats round trip: send [`Request::Stats`], drain
    /// events until its reply arrives, and return the snapshot. Events
    /// of other in-flight work are *discarded* — use on a connection
    /// dedicated to polling (the `fleet_top` pattern), not mid-pipeline.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`FleetError::Io`]; a non-stats
    /// reply body as [`FleetError::Protocol`].
    pub fn request_stats(&mut self, deadline: Option<Duration>) -> Result<FleetStats, FleetError> {
        let id = self.send(&Request::Stats, deadline)?;
        loop {
            if let WireEvent::Reply { id: got, outcome } = self.recv_event()? {
                if got != id {
                    continue;
                }
                return match *outcome {
                    Ok(Response::StatsSnapshot { stats }) => Ok(stats),
                    Ok(other) => Err(FleetError::Protocol(format!(
                        "stats request answered with {other:?}"
                    ))),
                    Err(e) => Err(e),
                };
            }
        }
    }

    /// Cancel subscription `target`; the server answers with its
    /// [`WireEvent::SubEnd`].
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`FleetError::Io`].
    pub fn unsubscribe(&mut self, target: u64) -> Result<(), FleetError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &encode_unsubscribe(id, target))?;
        Ok(())
    }

    /// Block until the next server event arrives (reply, scan frame, or
    /// subscription lifecycle marker).
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`FleetError::Io`]; malformed
    /// frames as [`FleetError::Protocol`].
    pub fn recv_event(&mut self) -> Result<WireEvent, FleetError> {
        loop {
            if let Some(payload) = self.frames.next_frame()? {
                return decode_event(&payload);
            }
            let mut chunk = [0u8; 16 << 10];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(FleetError::Io("connection closed".into()));
            }
            self.frames.extend(&chunk[..n]);
        }
    }

    /// Apply a read timeout to [`recv_event`](Self::recv_event)
    /// (`None` = block forever). Timeouts surface as
    /// [`FleetError::Io`].
    ///
    /// # Errors
    ///
    /// Propagates the setsockopt failure.
    pub fn set_recv_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }
}

/// A blocking TCP client speaking the fleet wire protocol.
#[derive(Debug)]
pub struct TcpFleetClient {
    stream: TcpStream,
}

impl TcpFleetClient {
    /// Connect to a [`FleetTcpServer`].
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Issue one request under the server's default deadline.
    ///
    /// # Errors
    ///
    /// Typed service errors come back as received; transport failures
    /// surface as [`FleetError::Io`].
    pub fn call(&mut self, request: &Request) -> Result<Response, FleetError> {
        self.call_with_deadline_opt(request, None)
    }

    /// Issue one request with an explicit deadline.
    ///
    /// # Errors
    ///
    /// Same contract as [`call`](Self::call).
    pub fn call_with_deadline(
        &mut self,
        request: &Request,
        deadline: Duration,
    ) -> Result<Response, FleetError> {
        self.call_with_deadline_opt(request, Some(deadline))
    }

    fn call_with_deadline_opt(
        &mut self,
        request: &Request,
        deadline: Option<Duration>,
    ) -> Result<Response, FleetError> {
        write_frame(&mut self.stream, &encode_request(request, deadline))?;
        let payload = read_frame(&mut self.stream)?;
        decode_response(&payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request, deadline: Option<Duration>) {
        let bytes = encode_request(&request, deadline);
        let (back, d) = decode_request(&bytes).unwrap();
        assert_eq!(back, request);
        assert_eq!(d, deadline);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(
            Request::Enroll {
                device: "bus-000".into(),
                nonce: 7,
            },
            None,
        );
        round_trip_request(
            Request::Verify {
                device: "bus-012".into(),
                nonce: u64::MAX,
            },
            Some(Duration::from_millis(1500)),
        );
        round_trip_request(
            Request::MonitorScan {
                device: "ünïcode-bus".into(),
                nonce: 0,
            },
            Some(Duration::from_millis(1)),
        );
        round_trip_request(Request::RegistrySnapshot, None);
        round_trip_request(
            Request::EnrollBatch {
                devices: vec![
                    ("bus-000".into(), 7),
                    ("bus-001".into(), u64::MAX),
                    ("ünïcode-bus".into(), 0),
                ],
            },
            Some(Duration::from_millis(250)),
        );
        round_trip_request(Request::EnrollBatch { devices: vec![] }, None);
        round_trip_request(
            Request::CohortEnroll {
                devices: vec![("bus-000".into(), 1), ("bus-001".into(), 2)],
            },
            Some(Duration::from_millis(5000)),
        );
        round_trip_request(
            Request::IntakeScan {
                devices: vec![("intake-ünïcode".into(), u64::MAX)],
            },
            None,
        );
        round_trip_request(Request::IntakeScan { devices: vec![] }, None);
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Enrolled {
                device: "bus-000".into(),
                shard: 3,
            },
            Response::Verdict {
                device: "bus-001".into(),
                accepted: true,
                similarity: 0.987654321,
            },
            Response::Scan {
                device: "bus-002".into(),
                detected: true,
                max_error: 1.25e-3,
                location_m: Some(0.125),
            },
            Response::Scan {
                device: "bus-003".into(),
                detected: false,
                max_error: 1e-5,
                location_m: None,
            },
            Response::Snapshot {
                devices: vec![("bus-000".into(), 0), ("bus-001".into(), 5)],
            },
            Response::EnrolledBatch {
                devices: vec![("bus-000".into(), 2), ("bus-001".into(), 7)],
            },
            Response::EnrolledBatch { devices: vec![] },
            Response::CohortModel {
                cohort_size: 256,
                excluded: 12,
                segments: 86,
            },
            Response::Intake {
                reports: vec![
                    IntakeReport {
                        device: "bus-000".into(),
                        verdict: Verdict::Genuine,
                        score: 0.993,
                        similarity: 0.993,
                        max_z: 2.5,
                        deviant_segments: 0,
                        worst_segment: 41,
                    },
                    IntakeReport {
                        device: "bus-001".into(),
                        verdict: Verdict::Tampered,
                        score: -0.75,
                        similarity: 0.91,
                        max_z: 44.0,
                        deviant_segments: 3,
                        worst_segment: 7,
                    },
                ],
            },
            Response::Intake { reports: vec![] },
        ];
        for response in cases {
            let bytes = encode_response(&Ok(response.clone()));
            assert_eq!(decode_response(&bytes).unwrap(), response);
        }
    }

    #[test]
    fn intake_verdict_codes_reject_unknown_bytes() {
        let report = IntakeReport {
            device: "bus-000".into(),
            verdict: Verdict::Counterfeit,
            score: 0.1,
            similarity: 0.2,
            max_z: 9.0,
            deviant_segments: 30,
            worst_segment: 2,
        };
        let mut bytes = encode_response(&Ok(Response::Intake {
            reports: vec![report],
        }));
        // Corrupt the verdict byte: it sits right after the status byte,
        // the response tag, the u32 count, and the length-prefixed name.
        let verdict_at = 1 + 1 + 4 + 2 + "bus-000".len();
        assert_eq!(bytes[verdict_at], Verdict::Counterfeit.code());
        bytes[verdict_at] = 250;
        assert!(matches!(
            decode_response(&bytes),
            Err(FleetError::Protocol(msg)) if msg.contains("verdict")
        ));
    }

    #[test]
    fn similarity_bits_survive_the_wire_exactly() {
        // The determinism tests compare verdicts bitwise across local
        // and TCP paths, so the f64 encoding must be exact — including
        // awkward values.
        for s in [0.1 + 0.2, f64::MIN_POSITIVE, 1.0 - f64::EPSILON] {
            let response = Response::Verdict {
                device: "b".into(),
                accepted: true,
                similarity: s,
            };
            match decode_response(&encode_response(&Ok(response))).unwrap() {
                Response::Verdict { similarity, .. } => {
                    assert_eq!(similarity.to_bits(), s.to_bits());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn errors_round_trip() {
        let cases = [
            FleetError::Overloaded {
                depth: 9,
                capacity: 8,
                reason: ShedReason::QueueFull,
            },
            FleetError::Overloaded {
                depth: 3,
                capacity: 8,
                reason: ShedReason::FairShare,
            },
            FleetError::DeadlineExceeded,
            FleetError::UnknownDevice("ghost".into()),
            FleetError::AcquisitionFailed { attempts: 5 },
            FleetError::ShuttingDown,
            FleetError::Protocol("bad tag".into()),
            FleetError::Io("broken pipe".into()),
            FleetError::NoCohortModel,
            FleetError::CohortRejected("cohort of 3 boards is too small".into()),
        ];
        for err in cases {
            let bytes = encode_response(&Err(err.clone()));
            assert_eq!(decode_response(&bytes).unwrap_err(), err);
        }
    }

    #[test]
    fn malformed_payloads_are_protocol_errors() {
        assert!(matches!(
            decode_request(&[]),
            Err(FleetError::Protocol(_))
        ));
        assert!(matches!(
            decode_request(&[99, 0, 0, 0, 0, TAG_SNAPSHOT]),
            Err(FleetError::Protocol(msg)) if msg.contains("version")
        ));
        // Unknown tag.
        assert!(matches!(
            decode_request(&[WIRE_VERSION, 0, 0, 0, 0, 200]),
            Err(FleetError::Protocol(msg)) if msg.contains("tag")
        ));
        // Trailing garbage.
        let mut bytes = encode_request(&Request::RegistrySnapshot, None);
        bytes.push(0);
        assert!(matches!(
            decode_request(&bytes),
            Err(FleetError::Protocol(msg)) if msg.contains("trailing")
        ));
        // Truncations of a valid request all fail cleanly.
        let bytes = encode_request(
            &Request::Verify {
                device: "bus-000".into(),
                nonce: 1,
            },
            Some(Duration::from_millis(10)),
        );
        for cut in 0..bytes.len() {
            assert!(
                decode_request(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn v2_requests_round_trip() {
        let verify = Request::Verify {
            device: "bus-007".into(),
            nonce: 1234,
        };
        let bytes = encode_request_tagged(99, &verify, Some(Duration::from_millis(250)));
        assert_eq!(
            decode_wire_request(&bytes).unwrap(),
            WireRequest::Tagged {
                id: 99,
                request: verify,
                deadline: Some(Duration::from_millis(250)),
            }
        );
        let bytes = encode_subscribe(5, "bus-001", 777, Duration::from_millis(20), 16);
        assert_eq!(
            decode_wire_request(&bytes).unwrap(),
            WireRequest::Subscribe {
                id: 5,
                device: "bus-001".into(),
                base_nonce: 777,
                interval: Duration::from_millis(20),
                max_frames: 16,
            }
        );
        let bytes = encode_unsubscribe(6, 5);
        assert_eq!(
            decode_wire_request(&bytes).unwrap(),
            WireRequest::Unsubscribe { id: 6, target: 5 }
        );
        // A v1 frame decodes as Plain through the same entry point.
        let bytes = encode_request(&Request::RegistrySnapshot, None);
        assert_eq!(
            decode_wire_request(&bytes).unwrap(),
            WireRequest::Plain {
                request: Request::RegistrySnapshot,
                deadline: None,
            }
        );
    }

    #[test]
    fn v2_events_round_trip() {
        let verdict = Ok(Response::Verdict {
            device: "bus-000".into(),
            accepted: true,
            similarity: 0.97,
        });
        match decode_event(&encode_tagged_response(42, &verdict)).unwrap() {
            WireEvent::Reply { id, outcome } => {
                assert_eq!(id, 42);
                assert_eq!(*outcome, verdict);
            }
            other => panic!("unexpected {other:?}"),
        }
        let scan = Ok(Response::Scan {
            device: "bus-001".into(),
            detected: false,
            max_error: 1e-4,
            location_m: None,
        });
        match decode_event(&encode_scan_frame(7, 3, &scan)).unwrap() {
            WireEvent::ScanFrame { id, seq, outcome } => {
                assert_eq!((id, seq), (7, 3));
                assert_eq!(*outcome, scan);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            decode_event(&encode_sub_ack(9, Duration::from_millis(15))).unwrap(),
            WireEvent::SubAck {
                id: 9,
                interval: Duration::from_millis(15),
            }
        );
        assert_eq!(
            decode_event(&encode_sub_end(9, 128)).unwrap(),
            WireEvent::SubEnd { id: 9, frames: 128 }
        );
        // A bare v1 response decodes as Plain.
        let err = Err(FleetError::DeadlineExceeded);
        match decode_event(&encode_response(&err)).unwrap() {
            WireEvent::Plain(outcome) => assert_eq!(*outcome, err),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut wire = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..5)
            .map(|i| encode_request(&Request::Verify {
                device: format!("bus-{i:03}"),
                nonce: i,
            }, None))
            .collect();
        for p in &payloads {
            wire.extend_from_slice(&(p.len() as u32).to_le_bytes());
            wire.extend_from_slice(p);
        }
        // Feed one byte at a time: every frame must come out intact.
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for b in &wire {
            fb.extend(std::slice::from_ref(b));
            while let Some(frame) = fb.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buffer_rejects_oversized_lengths() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(FleetError::Protocol(_))));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");

        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut Vec::new(), &huge).is_err());

        // A corrupt length header cannot cause a huge allocation.
        let mut bad = (MAX_FRAME as u32 + 1).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0; 8]);
        assert!(read_frame(&mut &bad[..]).is_err());
    }
}
