//! The event-driven wire layer: one thread, every connection.
//!
//! The reactor replaces thread-per-connection serving with a poll-based
//! readiness loop (`divot-polling`, a std-only `poll(2)` shim):
//! nonblocking sockets, per-connection read/write buffers with
//! incremental frame decode, and a completion queue bridging the
//! synchronous [`FleetService`](crate::FleetService) worker pool back
//! into the loop. One reactor thread multiplexes 10k+ connections.
//!
//! ```text
//!            ┌────────────────────────── reactor thread ──────────────────────────┐
//!  sockets ─▶│ poll wait ─▶ drain completions ─▶ read+decode ─▶ admit ─▶ flush │
//!            │     ▲                                   │ (round-robin, coalesced) │
//!            └─────┼───────────────────────────────────┼──────────────────────────┘
//!                  │ poller.notify()                   ▼ submit_batch_tagged
//!            ┌─────┴──────────┐            ┌───────────────────────┐
//!            │ CompletionQueue│ ◀──────────│ FleetService workers  │
//!            └────────────────┘            └───────────────────────┘
//! ```
//!
//! **Pipelining.** A v2 connection may hold up to
//! [`ReactorConfig::pipeline_window`] requests in flight; replies are
//! enveloped with the request id and stream back in completion order.
//! v1 (plain) requests stay strictly serial per connection — admitted
//! only when the connection has no plain request in flight — so the
//! reactor's byte stream for a v1 conversation is identical to the
//! threaded server's.
//!
//! **Inline serving and coalescing.** Before paying a worker-pool round
//! trip, each admission probes the shared verdict cache
//! ([`FleetClient::try_cached`]) and answers warm repeats directly from
//! the loop; concurrently-arriving verifies/scans for the same
//! `(device, nonce)` coalesce onto one in-service computation, with
//! every waiter receiving the single (bitwise-identical, by purity)
//! outcome.
//!
//! **Fair admission.** Parked requests are admitted round-robin across
//! connections, a bounded quota per visit, so one greedy pipelined
//! connection cannot monopolize the service queue. A connection's
//! parking lot is bounded (sheds
//! [`ShedReason::QueueFull`]); a parked request whose patience
//! ([`ReactorConfig::admission_timeout`]) expires under saturation is
//! shed with [`ShedReason::FairShare`].
//!
//! **Subscriptions.** A v2 client may register streaming `MonitorScan`
//! subscriptions: the reactor pushes one scan frame per interval, each
//! acquired under [`subscription_nonce`]`(base, seq)` — bitwise what an
//! explicit scan with that nonce returns — until the frame budget
//! empties, the client unsubscribes, or the connection dies. Stats
//! subscriptions stream periodic [`Response::StatsSnapshot`] frames
//! built inline on the reactor thread (same id namespace, same
//! ack/end lifecycle, no acquisition).
//!
//! **Health probes.** `Request::Stats` is answered inline by the
//! reactor from the telemetry registry snapshot — it never enters the
//! worker queue, so a saturated pool cannot delay an operator's view
//! of that saturation.
//!
//! **Telemetry.** `fleet.reactor.wakeups`, `fleet.reactor.frames`,
//! `fleet.reactor.frames_per_wakeup`, `fleet.reactor.pipeline_depth`,
//! `fleet.reactor.batch_width` (via the service),
//! `fleet.reactor.inline_hits`, `fleet.reactor.inline_stats`,
//! `fleet.reactor.coalesced`,
//! `fleet.reactor.sheds_fair`, `fleet.reactor.pushes`,
//! `fleet.reactor.push_skips`, `fleet.reactor.protocol_errors`,
//! `fleet.reactor.accept_errors`, and the gauges
//! `fleet.reactor.conns` / `fleet.reactor.subs`.

use crate::error::{FleetError, ShedReason};
use crate::service::{Completion, CompletionQueue, FleetClient, Request, Response};
use crate::sim::subscription_nonce;
use crate::wire::{
    decode_wire_request, encode_response, encode_scan_frame, encode_stats_frame, encode_sub_ack,
    encode_sub_end, encode_tagged_response, FrameBuffer, WireRequest, MAX_FRAME,
};
use divot_polling::{Event, Poller};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Registration key of the accept socket.
const LISTENER_KEY: usize = usize::MAX;

/// Tuning of the reactor loop. The defaults serve 10k pipelined
/// connections on one core; every knob exists for a test or bench that
/// needs to force a corner (tiny windows, instant patience, …).
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Maximum requests one connection may have in flight in the
    /// service at once (its pipeline window).
    pub pipeline_window: usize,
    /// Maximum decoded-but-unadmitted requests parked per connection;
    /// beyond this the newest are shed with
    /// [`ShedReason::QueueFull`].
    pub parked_capacity: usize,
    /// How long a parked request may wait for admission under
    /// saturation before it is shed with [`ShedReason::FairShare`].
    pub admission_timeout: Duration,
    /// Pending-write bytes per connection above which the reactor stops
    /// admitting its requests and skips its subscription pushes until
    /// the peer drains.
    pub write_capacity: usize,
    /// Admissions granted per connection per round-robin visit — the
    /// interleaving grain of fairness.
    pub admit_quota: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            pipeline_window: 128,
            parked_capacity: 256,
            admission_timeout: Duration::from_millis(50),
            write_capacity: 1 << 20,
            admit_quota: 16,
        }
    }
}

/// Where a parked request came from, deciding its reply encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParkedOrigin {
    /// v1: bare response, strictly serial per connection.
    Plain,
    /// v2: enveloped reply carrying the id, completion-ordered.
    Tagged(u64),
}

/// A decoded request waiting for admission.
struct Parked {
    origin: ParkedOrigin,
    request: Request,
    deadline: Option<Duration>,
    since: Instant,
}

/// Who gets one completed outcome.
#[derive(Debug, Clone, Copy)]
enum WaiterOrigin {
    Plain,
    Tagged(u64),
    /// A subscription push (`id` is the subscription id).
    Push(u64),
}

struct Waiter {
    conn: usize,
    origin: WaiterOrigin,
}

/// Requests with identical `(kind, device, nonce)` are pure duplicates:
/// they coalesce onto one in-service computation.
type CoalesceKey = (u8, String, u64);

struct TokenState {
    waiters: Vec<Waiter>,
    coalesce: Option<CoalesceKey>,
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    wbuf: Vec<u8>,
    wstart: usize,
    parked: VecDeque<Parked>,
    /// Requests in flight in the service on behalf of this connection.
    inflight: usize,
    /// A v1 plain request is in flight: no further plain admissions
    /// until its reply is written (serial v1 semantics).
    plain_busy: bool,
    /// Finish flushing, then close (post-protocol-error teardown).
    closing: bool,
    dead: bool,
    /// Interest currently registered with the poller.
    want_write: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            frames: FrameBuffer::new(),
            wbuf: Vec::new(),
            wstart: 0,
            parked: VecDeque::new(),
            inflight: 0,
            plain_busy: false,
            closing: false,
            dead: false,
            want_write: false,
        }
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wstart
    }
}

/// One streaming scan subscription.
struct Sub {
    device: String,
    base_nonce: u64,
    interval: Duration,
    /// `0` = unbounded.
    max_frames: u32,
    /// Next frame's sequence number == frames pushed so far.
    seq: u64,
    next_due: Instant,
    /// A pushed acquisition is in the service; skip ticks meanwhile.
    inflight: bool,
}

/// One streaming stats subscription. Unlike scan subscriptions, stats
/// frames are built inline on the reactor thread (a registry snapshot,
/// no acquisition), so there is no in-service `inflight` state.
struct StatsSub {
    interval: Duration,
    /// `0` = unbounded.
    max_frames: u32,
    /// Next frame's sequence number == frames pushed so far.
    seq: u64,
    next_due: Instant,
}

/// Everything [`spawn`] hands back to [`crate::wire::FleetTcpServer`].
pub(crate) struct ReactorHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) thread: JoinHandle<()>,
    pub(crate) poller: Arc<Poller>,
    pub(crate) shutdown: Arc<AtomicBool>,
}

/// Bind `addr` and start the reactor thread.
pub(crate) fn spawn(
    client: FleetClient,
    addr: &str,
    config: ReactorConfig,
) -> std::io::Result<ReactorHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let poller = Arc::new(Poller::new()?);
    poller
        .add(listener.as_raw_fd(), Event::readable(LISTENER_KEY))
        .map_err(|e| std::io::Error::new(e.kind(), format!("register listener: {e}")))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let waker = Arc::clone(&poller);
    let cq = CompletionQueue::new(move || waker.notify());
    let reactor = Reactor {
        listener,
        poller: Arc::clone(&poller),
        shutdown: Arc::clone(&shutdown),
        client,
        cq,
        config,
        conns: BTreeMap::new(),
        parked_conns: BTreeSet::new(),
        dirty: BTreeSet::new(),
        dead: Vec::new(),
        tokens: HashMap::new(),
        pending: HashMap::new(),
        subs: HashMap::new(),
        timers: BinaryHeap::new(),
        stats_subs: HashMap::new(),
        stats_timers: BinaryHeap::new(),
        next_key: 0,
        next_token: 0,
        cursor: 0,
    };
    let thread = std::thread::Builder::new()
        .name("fleet-reactor".into())
        .spawn(move || reactor.run())?;
    Ok(ReactorHandle {
        addr,
        thread,
        poller,
        shutdown,
    })
}

/// Append one length-prefixed frame to a connection's write buffer,
/// enforcing [`MAX_FRAME`] (an oversized response degrades into a typed
/// error frame rather than a corrupt stream).
fn push_frame(wbuf: &mut Vec<u8>, payload: &[u8]) {
    if payload.len() > MAX_FRAME {
        let err = encode_response(&Err(FleetError::Io(format!(
            "response of {} bytes exceeds MAX_FRAME",
            payload.len()
        ))));
        wbuf.extend_from_slice(&(err.len() as u32).to_le_bytes());
        wbuf.extend_from_slice(&err);
        return;
    }
    wbuf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wbuf.extend_from_slice(payload);
}

/// Coalescable identity of a request (pure read-only kinds).
fn coalesce_key(request: &Request) -> Option<CoalesceKey> {
    match request {
        Request::Verify { device, nonce } => Some((0, device.clone(), *nonce)),
        Request::MonitorScan { device, nonce } => Some((1, device.clone(), *nonce)),
        Request::Enroll { .. }
        | Request::EnrollBatch { .. }
        | Request::CohortEnroll { .. }
        | Request::IntakeScan { .. }
        | Request::RegistrySnapshot
        | Request::Stats => None,
    }
}

struct Reactor {
    listener: TcpListener,
    poller: Arc<Poller>,
    shutdown: Arc<AtomicBool>,
    client: FleetClient,
    cq: Arc<CompletionQueue>,
    config: ReactorConfig,
    conns: BTreeMap<usize, Conn>,
    /// Connections with a nonempty parking lot (admission work list).
    parked_conns: BTreeSet<usize>,
    /// Connections with unflushed write-buffer bytes.
    dirty: BTreeSet<usize>,
    /// Connections to tear down at the end of this iteration.
    dead: Vec<usize>,
    /// In-service submissions by token.
    tokens: HashMap<u64, TokenState>,
    /// Coalescable in-service submissions by identity.
    pending: HashMap<CoalesceKey, u64>,
    subs: HashMap<(usize, u64), Sub>,
    /// Subscription tick queue (lazily invalidated on re-arm/removal).
    timers: BinaryHeap<Reverse<(Instant, usize, u64)>>,
    /// Streaming stats subscriptions, sharing the per-connection id
    /// namespace with scan subscriptions.
    stats_subs: HashMap<(usize, u64), StatsSub>,
    /// Stats tick queue (lazily invalidated like `timers`).
    stats_timers: BinaryHeap<Reverse<(Instant, usize, u64)>>,
    next_key: usize,
    next_token: u64,
    /// Round-robin admission cursor (last connection that admitted).
    cursor: usize,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut completions: Vec<Completion> = Vec::new();
        while !self.shutdown.load(Ordering::Relaxed) {
            let timeout = self.poll_timeout();
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            divot_telemetry::inc("fleet.reactor.wakeups");
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let now = Instant::now();
            // Completions first: they free pipeline budget the admit
            // pass below can hand out, and fill write buffers.
            completions.clear();
            self.cq.drain_into(&mut completions);
            for c in completions.drain(..) {
                self.deliver(c.token, c.outcome, now);
            }
            let mut frames = 0u64;
            for &ev in &events {
                if ev.key == LISTENER_KEY {
                    self.accept_ready();
                } else {
                    if ev.readable {
                        frames += self.read_ready(ev.key, now);
                    }
                    if ev.writable {
                        self.dirty.insert(ev.key);
                    }
                }
            }
            if frames > 0 {
                divot_telemetry::add("fleet.reactor.frames", frames);
                divot_telemetry::observe("fleet.reactor.frames_per_wakeup", frames as f64);
            }
            self.admit(now);
            self.tick_subs(Instant::now());
            self.tick_stats_subs(Instant::now());
            self.shed_expired(Instant::now());
            self.flush_dirty();
            self.reap_dead();
        }
    }

    /// Sleep until the next subscription tick or fairness deadline —
    /// forever if neither is armed (completions wake us via notify).
    fn poll_timeout(&mut self) -> Option<Duration> {
        let now = Instant::now();
        let mut timeout: Option<Duration> = None;
        if let Some(&Reverse((due, _, _))) = self.timers.peek() {
            timeout = Some(due.saturating_duration_since(now));
        }
        if let Some(&Reverse((due, _, _))) = self.stats_timers.peek() {
            let until = due.saturating_duration_since(now);
            timeout = Some(timeout.map_or(until, |t| t.min(until)));
        }
        if !self.parked_conns.is_empty() {
            let cap = self.config.admission_timeout;
            timeout = Some(timeout.map_or(cap, |t| t.min(cap)));
        }
        timeout
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let key = self.next_key;
                    self.next_key += 1;
                    if self.poller.add(stream.as_raw_fd(), Event::readable(key)).is_err() {
                        divot_telemetry::inc("fleet.reactor.accept_errors");
                        continue;
                    }
                    self.conns.insert(key, Conn::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EMFILE and friends: count it and stop; readiness
                    // re-reports while the condition persists.
                    divot_telemetry::inc("fleet.reactor.accept_errors");
                    break;
                }
            }
        }
        divot_telemetry::set_gauge("fleet.reactor.conns", self.conns.len() as f64);
    }

    /// Pull bytes and decode frames off one ready connection; returns
    /// frames decoded.
    fn read_ready(&mut self, key: usize, now: Instant) -> u64 {
        let mut chunk = [0u8; 64 << 10];
        // Bounded reads per wakeup keep one firehose connection from
        // starving the loop; level-triggered polling re-reports it.
        for _ in 0..4 {
            let Some(conn) = self.conns.get_mut(&key) else {
                return 0;
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.dead = true;
                    self.dead.push(key);
                    break;
                }
                Ok(n) => {
                    conn.frames.extend(&chunk[..n]);
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    self.dead.push(key);
                    break;
                }
            }
        }
        let mut frames = 0u64;
        loop {
            let next = {
                let Some(conn) = self.conns.get_mut(&key) else {
                    return frames;
                };
                if conn.dead || conn.closing {
                    return frames;
                }
                conn.frames.next_frame()
            };
            match next {
                Ok(Some(payload)) => {
                    frames += 1;
                    self.handle_frame(key, &payload, now);
                }
                Ok(None) => return frames,
                Err(e) => {
                    // Unframeable stream: answer with the typed error,
                    // then close this connection — and only this one.
                    divot_telemetry::inc("fleet.reactor.protocol_errors");
                    self.write_to(key, &encode_response(&Err(e)));
                    if let Some(conn) = self.conns.get_mut(&key) {
                        conn.closing = true;
                    }
                    return frames;
                }
            }
        }
    }

    fn handle_frame(&mut self, key: usize, payload: &[u8], now: Instant) {
        let decoded = decode_wire_request(payload);
        match decoded {
            Err(e) => {
                // A malformed payload in a well-framed stream gets a
                // typed error reply and the connection lives on —
                // matching the threaded server.
                divot_telemetry::inc("fleet.reactor.protocol_errors");
                self.write_to(key, &encode_response(&Err(e)));
            }
            Ok(WireRequest::Plain { request, deadline }) => {
                self.park(key, ParkedOrigin::Plain, request, deadline, now);
            }
            Ok(WireRequest::Tagged {
                id,
                request,
                deadline,
            }) => {
                self.park(key, ParkedOrigin::Tagged(id), request, deadline, now);
            }
            Ok(WireRequest::Subscribe {
                id,
                device,
                base_nonce,
                interval,
                max_frames,
            }) => {
                let sub = Sub {
                    device,
                    base_nonce,
                    // A zero interval would busy-spin the loop; clamp
                    // to the poll granularity.
                    interval: interval.max(Duration::from_millis(1)),
                    max_frames,
                    seq: 0,
                    next_due: now,
                    inflight: false,
                };
                self.handle_subscribe(key, id, sub);
            }
            Ok(WireRequest::StatsSubscribe {
                id,
                interval,
                max_frames,
            }) => {
                let sub = StatsSub {
                    // Same busy-spin guard as scan subscriptions.
                    interval: interval.max(Duration::from_millis(1)),
                    max_frames,
                    seq: 0,
                    next_due: now,
                };
                self.handle_stats_subscribe(key, id, sub);
            }
            Ok(WireRequest::Unsubscribe { target, .. }) => {
                // Scan and stats subscriptions share the id namespace;
                // whichever holds the id ends.
                let frames = match self.stats_subs.remove(&(key, target)) {
                    Some(s) => s.seq,
                    None => self.subs.remove(&(key, target)).map_or(0, |s| s.seq),
                };
                self.set_subs_gauge();
                self.write_to(key, &encode_sub_end(target, frames));
            }
        }
    }

    /// Queue one decoded request for admission — serving it inline
    /// right away when the verdict cache already holds the answer and
    /// ordering allows.
    fn park(
        &mut self,
        key: usize,
        origin: ParkedOrigin,
        request: Request,
        deadline: Option<Duration>,
        now: Instant,
    ) {
        let inline_ok = {
            let Some(conn) = self.conns.get(&key) else {
                return;
            };
            match origin {
                // Tagged replies are completion-ordered: always fine.
                ParkedOrigin::Tagged(_) => true,
                // Plain replies are serial: only when nothing earlier
                // is outstanding or parked.
                ParkedOrigin::Plain => !conn.plain_busy && conn.parked.is_empty(),
            }
        };
        if inline_ok {
            // Stats are a health probe: answered on the reactor thread
            // from the registry snapshot, never queued behind a
            // saturated worker pool.
            if matches!(request, Request::Stats) {
                divot_telemetry::inc("fleet.reactor.inline_stats");
                let response = Response::StatsSnapshot {
                    stats: self.client.stats(),
                };
                let frame = match origin {
                    ParkedOrigin::Plain => encode_response(&Ok(response)),
                    ParkedOrigin::Tagged(id) => encode_tagged_response(id, &Ok(response)),
                };
                self.write_to(key, &frame);
                return;
            }
            if let Some(response) = self.client.try_cached(&request) {
                divot_telemetry::inc("fleet.reactor.inline_hits");
                let frame = match origin {
                    ParkedOrigin::Plain => encode_response(&Ok(response)),
                    ParkedOrigin::Tagged(id) => encode_tagged_response(id, &Ok(response)),
                };
                self.write_to(key, &frame);
                return;
            }
        }
        let parked_cap = self.config.parked_capacity;
        let shed = {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            if conn.parked.len() >= parked_cap {
                Some(conn.parked.len())
            } else {
                conn.parked.push_back(Parked {
                    origin,
                    request,
                    deadline,
                    since: now,
                });
                None
            }
        };
        match shed {
            Some(depth) => {
                let err = FleetError::Overloaded {
                    depth,
                    capacity: parked_cap,
                    reason: ShedReason::QueueFull,
                };
                let frame = match origin {
                    ParkedOrigin::Plain => encode_response(&Err(err)),
                    ParkedOrigin::Tagged(id) => encode_tagged_response(id, &Err(err)),
                };
                self.write_to(key, &frame);
            }
            None => {
                self.parked_conns.insert(key);
            }
        }
    }

    /// Round-robin admission: visit parked connections in rotation,
    /// a quota per visit, until the parking lots drain or the service
    /// queue saturates. Each admission is served inline (cache),
    /// coalesced onto an in-service duplicate, or staged into one
    /// batched submission per rotation.
    fn admit(&mut self, now: Instant) {
        loop {
            if self.parked_conns.is_empty() {
                return;
            }
            let order: Vec<usize> = {
                let after: Vec<usize> = self
                    .parked_conns
                    .range((self.cursor + 1)..)
                    .copied()
                    .collect();
                let before = self.parked_conns.range(..=self.cursor).copied();
                after.into_iter().chain(before).collect()
            };
            let mut staged: Vec<(u64, usize, Parked)> = Vec::new();
            let mut progress = false;
            for &key in &order {
                let mut quota = self.config.admit_quota;
                while quota > 0 {
                    let popped = {
                        let Some(conn) = self.conns.get_mut(&key) else {
                            self.parked_conns.remove(&key);
                            break;
                        };
                        if conn.dead
                            || conn.closing
                            || conn.inflight >= self.config.pipeline_window
                            || conn.pending_write() >= self.config.write_capacity
                        {
                            break;
                        }
                        let Some(front) = conn.parked.front() else {
                            self.parked_conns.remove(&key);
                            break;
                        };
                        if matches!(front.origin, ParkedOrigin::Plain) && conn.plain_busy {
                            break;
                        }
                        let p = conn.parked.pop_front().expect("front exists");
                        if conn.parked.is_empty() {
                            self.parked_conns.remove(&key);
                        }
                        p
                    };
                    quota -= 1;
                    progress = true;
                    self.cursor = key;
                    // Inline: the verdict may have landed in the cache
                    // since this request was parked.
                    if let Some(response) = self.client.try_cached(&popped.request) {
                        divot_telemetry::inc("fleet.reactor.inline_hits");
                        let frame = match popped.origin {
                            ParkedOrigin::Plain => encode_response(&Ok(response)),
                            ParkedOrigin::Tagged(id) => encode_tagged_response(id, &Ok(response)),
                        };
                        self.write_to(key, &frame);
                        continue;
                    }
                    let waiter_origin = match popped.origin {
                        ParkedOrigin::Plain => WaiterOrigin::Plain,
                        ParkedOrigin::Tagged(id) => WaiterOrigin::Tagged(id),
                    };
                    // Coalesce onto an identical in-service request.
                    let ckey = coalesce_key(&popped.request);
                    if let Some(token) = ckey.as_ref().and_then(|k| self.pending.get(k)) {
                        divot_telemetry::inc("fleet.reactor.coalesced");
                        self.tokens
                            .get_mut(token)
                            .expect("pending token exists")
                            .waiters
                            .push(Waiter {
                                conn: key,
                                origin: waiter_origin,
                            });
                        let conn = self.conns.get_mut(&key).expect("conn exists");
                        conn.inflight += 1;
                        if matches!(popped.origin, ParkedOrigin::Plain) {
                            conn.plain_busy = true;
                        }
                        continue;
                    }
                    // Fresh: stage for the batched submit.
                    let token = self.next_token;
                    self.next_token += 1;
                    self.tokens.insert(
                        token,
                        TokenState {
                            waiters: vec![Waiter {
                                conn: key,
                                origin: waiter_origin,
                            }],
                            coalesce: ckey,
                        },
                    );
                    let conn = self.conns.get_mut(&key).expect("conn exists");
                    conn.inflight += 1;
                    if matches!(popped.origin, ParkedOrigin::Plain) {
                        conn.plain_busy = true;
                    }
                    divot_telemetry::observe("fleet.reactor.pipeline_depth", conn.inflight as f64);
                    staged.push((token, key, popped));
                }
            }
            if staged.is_empty() {
                if !progress {
                    return;
                }
                continue;
            }
            let saturated = self.submit_staged(staged, now);
            if saturated || !progress {
                return;
            }
        }
    }

    /// Submit one rotation's staged admissions as a batch; roll back and
    /// re-park what the service sheds. Returns whether the service queue
    /// saturated (stop admitting until completions free it).
    fn submit_staged(&mut self, staged: Vec<(u64, usize, Parked)>, now: Instant) -> bool {
        let default_deadline = self.client.default_deadline();
        let batch: Vec<(Request, Duration, u64)> = staged
            .iter()
            .map(|(token, _, p)| {
                (
                    p.request.clone(),
                    p.deadline.unwrap_or(default_deadline),
                    *token,
                )
            })
            .collect();
        let results = self.client.submit_batch_tagged(batch, &self.cq);
        let mut saturated = false;
        let mut reparked: Vec<(usize, Parked)> = Vec::new();
        for ((token, key, parked), result) in staged.into_iter().zip(results) {
            match result {
                Ok(()) => {
                    if let Some(ckey) = &self.tokens[&token].coalesce {
                        self.pending.insert(ckey.clone(), token);
                    }
                }
                Err(err) => {
                    // Roll the staging back: budget, serialization,
                    // token bookkeeping.
                    self.tokens.remove(&token);
                    if let Some(conn) = self.conns.get_mut(&key) {
                        conn.inflight = conn.inflight.saturating_sub(1);
                        if matches!(parked.origin, ParkedOrigin::Plain) {
                            conn.plain_busy = false;
                        }
                    }
                    if matches!(
                        err,
                        FleetError::Overloaded {
                            reason: ShedReason::QueueFull,
                            ..
                        }
                    ) {
                        saturated = true;
                        reparked.push((key, parked));
                    } else {
                        // ShuttingDown and other hard failures go
                        // straight back to the caller.
                        let frame = match parked.origin {
                            ParkedOrigin::Plain => encode_response(&Err(err)),
                            ParkedOrigin::Tagged(id) => encode_tagged_response(id, &Err(err)),
                        };
                        self.write_to(key, &frame);
                    }
                }
            }
        }
        let _ = now;
        // Reverse order restores each connection's original FIFO.
        for (key, parked) in reparked.into_iter().rev() {
            if let Some(conn) = self.conns.get_mut(&key) {
                conn.parked.push_front(parked);
                self.parked_conns.insert(key);
            }
        }
        saturated
    }

    /// Shed parked requests whose admission patience expired — the
    /// fair-share backpressure signal under sustained saturation.
    fn shed_expired(&mut self, now: Instant) {
        if self.parked_conns.is_empty() {
            return;
        }
        let keys: Vec<usize> = self.parked_conns.iter().copied().collect();
        let timeout = self.config.admission_timeout;
        for key in keys {
            loop {
                let expired = {
                    let Some(conn) = self.conns.get_mut(&key) else {
                        self.parked_conns.remove(&key);
                        break;
                    };
                    match conn.parked.front() {
                        Some(front) if now.duration_since(front.since) >= timeout => {
                            let p = conn.parked.pop_front().expect("front exists");
                            if conn.parked.is_empty() {
                                self.parked_conns.remove(&key);
                            }
                            Some(p)
                        }
                        _ => break,
                    }
                };
                let Some(p) = expired else { break };
                divot_telemetry::inc("fleet.reactor.sheds_fair");
                let err = FleetError::Overloaded {
                    depth: self.client.queue_depth(),
                    capacity: self.client.queue_capacity(),
                    reason: ShedReason::FairShare,
                };
                let frame = match p.origin {
                    ParkedOrigin::Plain => encode_response(&Err(err)),
                    ParkedOrigin::Tagged(id) => encode_tagged_response(id, &Err(err)),
                };
                self.write_to(key, &frame);
            }
        }
    }

    /// `fleet.reactor.subs` counts both subscription kinds.
    fn set_subs_gauge(&self) {
        divot_telemetry::set_gauge(
            "fleet.reactor.subs",
            (self.subs.len() + self.stats_subs.len()) as f64,
        );
    }

    fn handle_subscribe(&mut self, key: usize, id: u64, sub: Sub) {
        if self.subs.contains_key(&(key, id)) || self.stats_subs.contains_key(&(key, id)) {
            self.write_to(
                key,
                &encode_tagged_response(
                    id,
                    &Err(FleetError::Protocol(format!(
                        "subscription id {id} already active"
                    ))),
                ),
            );
            return;
        }
        if !self.client.device_known(&sub.device) {
            self.write_to(
                key,
                &encode_tagged_response(id, &Err(FleetError::UnknownDevice(sub.device))),
            );
            return;
        }
        self.write_to(key, &encode_sub_ack(id, sub.interval));
        self.timers.push(Reverse((sub.next_due, key, id)));
        self.subs.insert((key, id), sub);
        self.set_subs_gauge();
    }

    fn handle_stats_subscribe(&mut self, key: usize, id: u64, sub: StatsSub) {
        if self.subs.contains_key(&(key, id)) || self.stats_subs.contains_key(&(key, id)) {
            self.write_to(
                key,
                &encode_tagged_response(
                    id,
                    &Err(FleetError::Protocol(format!(
                        "subscription id {id} already active"
                    ))),
                ),
            );
            return;
        }
        self.write_to(key, &encode_sub_ack(id, sub.interval));
        self.stats_timers.push(Reverse((sub.next_due, key, id)));
        self.stats_subs.insert((key, id), sub);
        self.set_subs_gauge();
    }

    /// Fire due stats ticks. Frames are a registry snapshot built right
    /// here on the reactor thread — no worker round trip — so the only
    /// flow control is the peer's write buffer: a backed-up connection
    /// skips the tick and `seq` advances only when a frame is pushed.
    fn tick_stats_subs(&mut self, now: Instant) {
        while let Some(&Reverse((due, key, id))) = self.stats_timers.peek() {
            if due > now {
                break;
            }
            self.stats_timers.pop();
            let action = {
                let Some(sub) = self.stats_subs.get_mut(&(key, id)) else {
                    continue; // unsubscribed or conn died: stale timer
                };
                if sub.next_due != due {
                    continue; // re-armed elsewhere: stale timer
                }
                let backed_up = self
                    .conns
                    .get(&key)
                    .is_none_or(|c| c.pending_write() >= self.config.write_capacity);
                if backed_up {
                    sub.next_due = now + sub.interval;
                    None
                } else {
                    let seq = sub.seq;
                    sub.seq += 1;
                    let exhausted = sub.max_frames > 0 && sub.seq >= u64::from(sub.max_frames);
                    if !exhausted {
                        sub.next_due = now + sub.interval;
                    }
                    Some((seq, exhausted, sub.seq))
                }
            };
            match action {
                None => {
                    divot_telemetry::inc("fleet.reactor.push_skips");
                    if let Some(sub) = self.stats_subs.get(&(key, id)) {
                        self.stats_timers.push(Reverse((sub.next_due, key, id)));
                    }
                }
                Some((seq, exhausted, frames)) => {
                    let outcome = Ok(Response::StatsSnapshot {
                        stats: self.client.stats(),
                    });
                    divot_telemetry::inc("fleet.reactor.pushes");
                    self.write_to(key, &encode_stats_frame(id, seq, &outcome));
                    if exhausted {
                        self.stats_subs.remove(&(key, id));
                        self.set_subs_gauge();
                        self.write_to(key, &encode_sub_end(id, frames));
                    } else if let Some(sub) = self.stats_subs.get(&(key, id)) {
                        self.stats_timers.push(Reverse((sub.next_due, key, id)));
                    }
                }
            }
        }
    }

    /// Fire due subscription ticks: serve the frame inline from the
    /// verdict cache when warm, otherwise submit the acquisition and
    /// deliver on completion.
    fn tick_subs(&mut self, now: Instant) {
        while let Some(&Reverse((due, key, id))) = self.timers.peek() {
            if due > now {
                break;
            }
            self.timers.pop();
            let (request, skip) = {
                let Some(sub) = self.subs.get_mut(&(key, id)) else {
                    continue; // unsubscribed or conn died: stale timer
                };
                if sub.next_due != due {
                    continue; // re-armed elsewhere: stale timer
                }
                let backed_up = sub.inflight
                    || self
                        .conns
                        .get(&key)
                        .is_none_or(|c| c.pending_write() >= self.config.write_capacity);
                if backed_up {
                    // Flow control: skip this tick, try again next
                    // interval. The frame is not lost — seq advances
                    // only when a frame is actually pushed.
                    sub.next_due = now + sub.interval;
                    (None, true)
                } else {
                    let nonce = subscription_nonce(sub.base_nonce, sub.seq);
                    (
                        Some(Request::MonitorScan {
                            device: sub.device.clone(),
                            nonce,
                        }),
                        false,
                    )
                }
            };
            if skip {
                divot_telemetry::inc("fleet.reactor.push_skips");
                if let Some(sub) = self.subs.get(&(key, id)) {
                    self.timers.push(Reverse((sub.next_due, key, id)));
                }
                continue;
            }
            let request = request.expect("not skipped");
            if let Some(response) = self.client.try_cached(&request) {
                self.push_scan_outcome(key, id, Ok(response), now);
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            self.tokens.insert(
                token,
                TokenState {
                    waiters: vec![Waiter {
                        conn: key,
                        origin: WaiterOrigin::Push(id),
                    }],
                    coalesce: None,
                },
            );
            let deadline = self.client.default_deadline();
            match self.client.submit_tagged(request, deadline, token, &self.cq) {
                Ok(()) => {
                    if let Some(sub) = self.subs.get_mut(&(key, id)) {
                        sub.inflight = true;
                    }
                }
                Err(_) => {
                    // Saturated service: drop the tick, not the frame.
                    self.tokens.remove(&token);
                    divot_telemetry::inc("fleet.reactor.push_skips");
                    if let Some(sub) = self.subs.get_mut(&(key, id)) {
                        sub.next_due = now + sub.interval;
                        self.timers.push(Reverse((sub.next_due, key, id)));
                    }
                }
            }
        }
    }

    /// Write one scan frame to its subscriber, advance the stream, and
    /// either re-arm the tick or end the subscription.
    fn push_scan_outcome(
        &mut self,
        key: usize,
        id: u64,
        outcome: Result<Response, FleetError>,
        now: Instant,
    ) {
        let Some(sub) = self.subs.get_mut(&(key, id)) else {
            return; // unsubscribed while the acquisition was in flight
        };
        sub.inflight = false;
        let seq = sub.seq;
        sub.seq += 1;
        let failed = outcome.is_err();
        let exhausted = sub.max_frames > 0 && sub.seq >= u64::from(sub.max_frames);
        let frames = sub.seq;
        if failed || exhausted {
            self.subs.remove(&(key, id));
            self.set_subs_gauge();
            divot_telemetry::inc("fleet.reactor.pushes");
            self.write_to(key, &encode_scan_frame(id, seq, &outcome));
            self.write_to(key, &encode_sub_end(id, frames));
            return;
        }
        sub.next_due = now + sub.interval;
        let due = sub.next_due;
        self.timers.push(Reverse((due, key, id)));
        divot_telemetry::inc("fleet.reactor.pushes");
        self.write_to(key, &encode_scan_frame(id, seq, &outcome));
    }

    /// Route one completed service outcome to every waiter of its token.
    fn deliver(&mut self, token: u64, outcome: Result<Response, FleetError>, now: Instant) {
        let Some(state) = self.tokens.remove(&token) else {
            return;
        };
        if let Some(ckey) = &state.coalesce {
            self.pending.remove(ckey);
        }
        for waiter in state.waiters {
            match waiter.origin {
                WaiterOrigin::Plain => {
                    if let Some(conn) = self.conns.get_mut(&waiter.conn) {
                        conn.inflight = conn.inflight.saturating_sub(1);
                        conn.plain_busy = false;
                    }
                    self.write_to(waiter.conn, &encode_response(&outcome));
                }
                WaiterOrigin::Tagged(id) => {
                    if let Some(conn) = self.conns.get_mut(&waiter.conn) {
                        conn.inflight = conn.inflight.saturating_sub(1);
                    }
                    self.write_to(waiter.conn, &encode_tagged_response(id, &outcome));
                }
                WaiterOrigin::Push(id) => {
                    self.push_scan_outcome(waiter.conn, id, outcome.clone(), now);
                }
            }
        }
    }

    /// Append a frame to a connection's write buffer and mark it dirty.
    fn write_to(&mut self, key: usize, payload: &[u8]) {
        if let Some(conn) = self.conns.get_mut(&key) {
            if conn.dead {
                return;
            }
            push_frame(&mut conn.wbuf, payload);
            self.dirty.insert(key);
        }
    }

    /// Flush every dirty connection; keep write interest only where the
    /// socket pushed back.
    fn flush_dirty(&mut self) {
        let dirty = std::mem::take(&mut self.dirty);
        for key in dirty {
            let Some(conn) = self.conns.get_mut(&key) else {
                continue;
            };
            if conn.dead {
                continue;
            }
            while conn.wstart < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wstart..]) {
                    Ok(0) => {
                        conn.dead = true;
                        self.dead.push(key);
                        break;
                    }
                    Ok(n) => conn.wstart += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        self.dead.push(key);
                        break;
                    }
                }
            }
            if conn.dead {
                continue;
            }
            if conn.wstart == conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wstart = 0;
                if conn.closing {
                    conn.dead = true;
                    self.dead.push(key);
                    continue;
                }
                if conn.want_write {
                    conn.want_write = false;
                    let _ = self
                        .poller
                        .modify(conn.stream.as_raw_fd(), Event::readable(key));
                }
            } else {
                // Socket full: finish via writable readiness.
                self.dirty.insert(key);
                if !conn.want_write {
                    conn.want_write = true;
                    let _ = self.poller.modify(conn.stream.as_raw_fd(), Event::all(key));
                }
            }
        }
    }

    /// Tear down connections marked dead this iteration.
    fn reap_dead(&mut self) {
        if self.dead.is_empty() {
            return;
        }
        let dead = std::mem::take(&mut self.dead);
        for key in dead {
            let Some(conn) = self.conns.remove(&key) else {
                continue;
            };
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            self.parked_conns.remove(&key);
            self.dirty.remove(&key);
            self.subs.retain(|&(c, _), _| c != key);
            self.stats_subs.retain(|&(c, _), _| c != key);
            // In-flight tokens keep their waiter entries; delivery
            // skips missing connections (keys are never reused).
        }
        divot_telemetry::set_gauge("fleet.reactor.conns", self.conns.len() as f64);
        self.set_subs_gauge();
    }
}
