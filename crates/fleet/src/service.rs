//! The concurrent attestation service: bounded admission, worker pool,
//! deadlines, retry.
//!
//! Request lifecycle:
//!
//! ```text
//! client ──try_push──▶ [bounded queue] ──pop──▶ worker ──▶ reply channel
//!            │                                   │
//!            └─ full → FleetError::Overloaded    ├─ deadline expired →
//!               (typed shed, never buffered)     │    FleetError::DeadlineExceeded
//!                                                └─ transient acquisition fault →
//!                                                     retry with jittered backoff
//! ```
//!
//! Backpressure is enforced at *admission*: when the queue holds
//! `queue_capacity` jobs, `submit` fails immediately with a typed
//! [`FleetError::Overloaded`] instead of queueing — overload degrades
//! into explicit sheds at constant memory, and the latency of accepted
//! requests stays bounded by `queue_capacity / throughput` instead of
//! collapsing under an unbounded backlog.
//!
//! Scheduling never touches results: verdicts are a pure function of
//! `(fleet seed, device, nonce)` (see [`crate::sim`]), so any worker
//! count yields bitwise-identical responses.
//!
//! That purity also powers the verify fast path: each worker owns a
//! private L1 verdict tier and shares an L2 tier (see [`crate::cache`]),
//! so a repeat verify of the same `(device, nonce)` under the same
//! enrollment generation is answered without running the acquisition
//! engine at all — and the cached bytes are identical to a fresh
//! computation, so memoization is invisible to the determinism contract.

use crate::cache::{TwoTierCache, VerdictKey, VerdictKind, WorkerTier};
use crate::error::{FleetError, ShedReason};
use crate::sim::SimulatedFleet;
use crate::store::FleetStore;
use divot_cohort::{CohortConfig, PopulationModel, Verdict};
use divot_core::auth::{AuthPolicy, Authenticator};
use divot_core::exec::ExecPolicy;
use divot_core::tamper::{TamperDetector, TamperPolicy};
use divot_dsp::rng::{mix_seed, DivotRng};
use divot_telemetry::{MetricSnapshot, TraceCtx, Value};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A request to the fleet service. Every variant names its device by
/// string id; `nonce` seeds the request's acquisition noise stream
/// (a fresh nonce per request models a fresh physical measurement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enroll (or re-enroll) a device: measure both bus ends and store
    /// the pairing.
    Enroll {
        /// Device id.
        device: String,
        /// Enrollment noise stream selector.
        nonce: u64,
    },
    /// Enroll a whole cohort in one request: every `(device, nonce)`
    /// row is enrolled exactly as a standalone [`Request::Enroll`] with
    /// that nonce would be (bitwise-identical pairings, thresholds, and
    /// store state), but the service amortizes the cold path — one
    /// engine warm-up fan-out, batched clean acquisitions, one
    /// threshold-map write lock, and one store pass per touched shard.
    /// Admission is all-or-nothing: one unknown device fails the whole
    /// batch before any enrollment happens.
    EnrollBatch {
        /// `(device id, enrollment nonce)` rows, enrolled in order.
        devices: Vec<(String, u64)>,
    },
    /// Authenticate a device against its stored fingerprint.
    Verify {
        /// Device id.
        device: String,
        /// Acquisition noise stream selector.
        nonce: u64,
    },
    /// Tamper-scan a device: compare a fresh acquisition against the
    /// stored fingerprint and report threshold crossings.
    MonitorScan {
        /// Device id.
        device: String,
        /// Acquisition noise stream selector.
        nonce: u64,
    },
    /// Learn (or relearn) the golden-free population model from an
    /// intake cohort: acquire one averaged fingerprint per `(device,
    /// nonce)` row, cluster out off-population boards, and fit the
    /// robust per-segment statistics subsequent
    /// [`Request::IntakeScan`]s attest against. All-or-nothing: one
    /// unknown device fails the batch before anything is acquired.
    CohortEnroll {
        /// `(device id, acquisition nonce)` rows forming the cohort.
        devices: Vec<(String, u64)>,
    },
    /// Attest unknown boards against the learned population model —
    /// supply-chain intake with no per-device enrollment. Each row is
    /// acquired exactly like a solo acquisition with that nonce and
    /// scored independently, so verdicts are bitwise-identical across
    /// worker layouts and batch splits.
    IntakeScan {
        /// `(device id, acquisition nonce)` rows to attest, in order.
        devices: Vec<(String, u64)>,
    },
    /// List every enrolled device and its shard.
    RegistrySnapshot,
    /// Export the service's operational stats: queue depth, telemetry
    /// counters/gauges, and per-kind latency quantiles. Served without
    /// running the acquisition engine; the reactor transport answers it
    /// inline without touching the worker pool.
    Stats,
}

impl Request {
    /// Short label of the request kind (telemetry metric names).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Enroll { .. } => "enroll",
            Self::EnrollBatch { .. } => "enroll_batch",
            Self::Verify { .. } => "verify",
            Self::MonitorScan { .. } => "scan",
            Self::CohortEnroll { .. } => "cohort_enroll",
            Self::IntakeScan { .. } => "intake_scan",
            Self::RegistrySnapshot => "snapshot",
            Self::Stats => "stats",
        }
    }

    /// The per-kind latency histogram name, as a static string — the
    /// worker hot loop records one observation per request, and a
    /// `format!` there was measurable allocation churn under load.
    pub fn latency_metric(&self) -> &'static str {
        match self {
            Self::Enroll { .. } => "fleet.request.latency.enroll",
            Self::EnrollBatch { .. } => "fleet.request.latency.enroll_batch",
            Self::Verify { .. } => "fleet.request.latency.verify",
            Self::MonitorScan { .. } => "fleet.request.latency.scan",
            Self::CohortEnroll { .. } => "fleet.request.latency.cohort_enroll",
            Self::IntakeScan { .. } => "fleet.request.latency.intake_scan",
            Self::RegistrySnapshot => "fleet.request.latency.snapshot",
            Self::Stats => "fleet.request.latency.stats",
        }
    }

    /// The deterministic trace-sampling seed: an FNV-1a hash of the
    /// device identity folded with the request nonce. The same request
    /// hashes to the same seed on the client, the reactor, and the
    /// worker, so every layer independently reaches the same sampling
    /// decision without threading a context through the wire protocol.
    /// `None` for kinds with no acquisition identity (snapshot, stats).
    fn trace_seed(&self) -> Option<u64> {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let fnv = |name: &str| {
            let mut h = OFFSET;
            for &b in name.as_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            h
        };
        match self {
            Self::Enroll { device, nonce }
            | Self::Verify { device, nonce }
            | Self::MonitorScan { device, nonce } => Some(fnv(device) ^ nonce),
            Self::EnrollBatch { devices }
            | Self::CohortEnroll { devices }
            | Self::IntakeScan { devices } => {
                devices.first().map(|(device, nonce)| fnv(device) ^ nonce)
            }
            Self::RegistrySnapshot | Self::Stats => None,
        }
    }

    /// This request's trace context: `Some` only when a tracer is
    /// installed ([`divot_telemetry::install_tracer`]) and the request's
    /// seed lands in the deterministic 1-in-N sample.
    pub fn trace_ctx(&self) -> Option<TraceCtx> {
        TraceCtx::sample(self.trace_seed()?)
    }
}

/// A successful response from the fleet service.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The device is enrolled and its pairing persisted in the store.
    Enrolled {
        /// Device id.
        device: String,
        /// The shard the pairing landed on.
        shard: u32,
    },
    /// Every device of an [`Request::EnrollBatch`] is enrolled and its
    /// pairing persisted in the store.
    EnrolledBatch {
        /// `(device, shard)` rows in request order.
        devices: Vec<(String, u32)>,
    },
    /// The outcome of a verify.
    Verdict {
        /// Device id.
        device: String,
        /// Whether the measured IIP matched the enrolled fingerprint.
        accepted: bool,
        /// The similarity score behind the decision.
        similarity: f64,
    },
    /// The outcome of a tamper scan.
    Scan {
        /// Device id.
        device: String,
        /// Whether any error sample exceeded the tamper threshold.
        detected: bool,
        /// Largest error observed (noise-floor reading when clean).
        max_error: f64,
        /// Estimated tamper distance from the instrumented end, meters.
        location_m: Option<f64>,
    },
    /// A [`Request::CohortEnroll`] learned (and installed) a population
    /// model.
    CohortModel {
        /// Boards the model was fitted on (the genuine cluster).
        cohort_size: u32,
        /// Boards excluded as outlier clusters.
        excluded: u32,
        /// Fingerprint segments per board.
        segments: u32,
    },
    /// Per-board verdicts of a [`Request::IntakeScan`], in request
    /// order.
    Intake {
        /// One report per scanned board.
        reports: Vec<IntakeReport>,
    },
    /// The registry listing.
    Snapshot {
        /// `(device, shard)` rows, sorted by device name.
        devices: Vec<(String, u32)>,
    },
    /// The service's operational stats (see [`FleetStats`]).
    StatsSnapshot {
        /// The exported snapshot.
        stats: FleetStats,
    },
}

/// One board's intake-scan outcome: the typed verdict plus the compact
/// evidence an operator needs to route the board (full per-segment z
/// profiles stay on the service; the wire carries this summary).
#[derive(Debug, Clone, PartialEq)]
pub struct IntakeReport {
    /// Device id of the scanned board.
    pub device: String,
    /// The population verdict.
    pub verdict: Verdict,
    /// Scalar genuineness score (the ROC axis — higher is more
    /// genuine).
    pub score: f64,
    /// Mean-removed cosine similarity to the population centroid.
    pub similarity: f64,
    /// Largest per-segment robust z-score.
    pub max_z: f64,
    /// Segments whose z exceeded the configured deviance threshold.
    pub deviant_segments: u32,
    /// Segment index of the largest z — where to inspect the board.
    pub worst_segment: u32,
}

/// A point-in-time export of the service's operational state: what
/// [`Request::Stats`] returns and what `fleet_top` renders. Metric rows
/// come from the installed telemetry default's registry in lexicographic
/// name order; with no telemetry installed the rows are empty but the
/// queue fields still report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetStats {
    /// Jobs currently waiting in the admission queue.
    pub queue_depth: u32,
    /// The admission queue's capacity (sheds begin at this depth).
    pub queue_capacity: u32,
    /// `(name, count)` counter rows, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge rows, name-ordered.
    pub gauges: Vec<(String, f64)>,
    /// `(name, count, p50, p90, p99)` histogram rows, name-ordered.
    /// Quantiles are bucket-interpolated estimates
    /// ([`divot_telemetry::HistogramSnapshot::quantile`]); an empty
    /// histogram reports zeros.
    pub histograms: Vec<(String, u64, f64, f64, f64)>,
}

impl FleetStats {
    /// The `(count, p50, p90, p99)` row of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<(u64, f64, f64, f64)> {
        self.histograms
            .iter()
            .find(|(n, ..)| n == name)
            .map(|&(_, count, p50, p90, p99)| (count, p50, p90, p99))
    }

    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// Retry policy for transient simulated-acquisition faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Probability that one acquisition attempt faults transiently
    /// (EMI burst, trigger glitch). `0.0` disables fault injection.
    pub failure_prob: f64,
    /// Total attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Base backoff before the second attempt; attempt `k` waits
    /// `base_backoff · 2^(k-1) · (1 + jitter)`.
    pub base_backoff: Duration,
    /// Maximum relative jitter added to each backoff (deterministic per
    /// request — see [`SimulatedFleet::transient_fault`]'s seeding).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            failure_prob: 0.0,
            max_attempts: 3,
            base_backoff: Duration::from_micros(50),
            jitter: 0.5,
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads; `0` means [`divot_dsp::par::max_threads`].
    pub workers: usize,
    /// Admission queue capacity: submissions beyond this are shed.
    pub queue_capacity: usize,
    /// Deadline applied to [`FleetClient::call`] submissions.
    pub default_deadline: Duration,
    /// Store shard count.
    pub shards: usize,
    /// Authentication policy for verifies.
    pub auth: AuthPolicy,
    /// Tamper policy floor for monitor scans; enrollment raises each
    /// device's effective threshold above its measured clean noise floor.
    pub tamper: TamperPolicy,
    /// Safety margin between a device's clean noise floor and its
    /// effective tamper threshold (set at enrollment).
    pub tamper_margin: f64,
    /// Transient-fault retry policy.
    pub retry: RetryPolicy,
    /// Verdict-cache entries per tier (L1 per worker, shared L2).
    /// `0` disables verdict memoization entirely — the determinism
    /// suite uses that to A/B cached against uncached service runs.
    pub verdict_cache_capacity: usize,
    /// Population-model learning and intake-verdict thresholds.
    pub cohort: CohortConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 256,
            default_deadline: Duration::from_secs(30),
            shards: 8,
            // The operating point of the fast-instrument fleet sim
            // (see `FleetSimConfig::fast`): genuine ≥ 0.92, impostor
            // ≤ 0.85, so 0.89 splits the gap with margin on both sides.
            auth: AuthPolicy::with_threshold(0.89),
            tamper: TamperPolicy::default(),
            tamper_margin: 4.0,
            retry: RetryPolicy::default(),
            verdict_cache_capacity: 4096,
            cohort: CohortConfig::default(),
        }
    }
}

impl FleetConfig {
    /// The same configuration with an explicit worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The same configuration with an explicit queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// The same configuration with an explicit verdict-cache capacity
    /// per tier (`0` disables verdict memoization).
    pub fn with_verdict_cache_capacity(mut self, cap: usize) -> Self {
        self.verdict_cache_capacity = cap;
        self
    }
}

/// The outcome of one completed tagged submission.
#[derive(Debug)]
pub struct Completion {
    /// The token the submitter attached (reactor request bookkeeping).
    pub token: u64,
    /// The job's outcome, exactly as a blocking caller would see it.
    pub outcome: Result<Response, FleetError>,
}

/// A mailbox collecting [`Completion`]s of tagged submissions, with a
/// caller-supplied waker fired after every push — the bridge between
/// the synchronous worker pool and an event loop that must not block on
/// per-request channels. The reactor passes `poller.notify` as the
/// waker; workers push under a short mutex and the loop drains whole
/// batches per wakeup.
pub struct CompletionQueue {
    done: Mutex<Vec<Completion>>,
    waker: Box<dyn Fn() + Send + Sync>,
}

impl std::fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.done.lock().map(|d| d.len()).unwrap_or(0);
        f.debug_struct("CompletionQueue").field("ready", &n).finish()
    }
}

impl CompletionQueue {
    /// A new queue whose `waker` runs (outside the lock) after each
    /// completion is pushed.
    pub fn new(waker: impl Fn() + Send + Sync + 'static) -> Arc<Self> {
        Arc::new(Self {
            done: Mutex::new(Vec::new()),
            waker: Box::new(waker),
        })
    }

    /// Deliver one completion and fire the waker.
    pub fn push(&self, token: u64, outcome: Result<Response, FleetError>) {
        {
            let mut done = self.done.lock().expect("completion queue poisoned");
            done.push(Completion { token, outcome });
        }
        (self.waker)();
    }

    /// Move every ready completion into `out` (oldest first).
    pub fn drain_into(&self, out: &mut Vec<Completion>) {
        let mut done = self.done.lock().expect("completion queue poisoned");
        out.append(&mut done);
    }
}

/// Where a job's outcome goes.
enum Reply {
    /// A blocking caller waiting on a channel.
    Oneshot(mpsc::Sender<Result<Response, FleetError>>),
    /// An event loop draining a shared [`CompletionQueue`].
    Tagged {
        token: u64,
        queue: Arc<CompletionQueue>,
    },
}

impl Reply {
    fn deliver(self, outcome: Result<Response, FleetError>) {
        match self {
            // A disconnected receiver just means the caller gave up.
            Self::Oneshot(tx) => drop(tx.send(outcome)),
            Self::Tagged { token, queue } => queue.push(token, outcome),
        }
    }
}

/// One queued unit of work.
struct Job {
    request: Request,
    deadline: Instant,
    submitted: Instant,
    /// The request's sampled trace context, decided at admission
    /// (deterministically — see [`Request::trace_ctx`]); `None` for the
    /// unsampled majority.
    trace: Option<TraceCtx>,
    reply: Reply,
}

/// Queue state under the mutex.
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Shared state between clients and workers.
struct ServiceInner {
    config: FleetConfig,
    sim: SimulatedFleet,
    store: FleetStore,
    authenticator: Authenticator,
    /// Per-device tamper thresholds calibrated at enrollment (derived
    /// deterministically from the enrollment nonce, so any worker layout
    /// calibrates identical thresholds). Devices restored from persisted
    /// banks without re-enrollment fall back to the policy floor.
    thresholds: std::sync::RwLock<std::collections::HashMap<String, f64>>,
    /// The shared L2 verdict tier; each worker thread owns its own L1
    /// [`WorkerTier`] inside its [`work`](Self::work) loop.
    verdicts: TwoTierCache<Response>,
    /// The golden-free population model intake scans attest against —
    /// installed (replaced whole) by [`Request::CohortEnroll`]. Scoring
    /// takes a clone of the `Arc` and drops the lock, so a model swap
    /// never blocks in-flight scans and every scan's verdicts come from
    /// exactly one model.
    cohort: std::sync::RwLock<Option<Arc<PopulationModel>>>,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
}

impl ServiceInner {
    fn note_depth(&self, depth: usize) {
        divot_telemetry::set_gauge("fleet.queue.depth", depth as f64);
    }

    /// Admission: push or shed. Never blocks.
    fn submit(
        &self,
        request: Request,
        deadline: Instant,
    ) -> Result<mpsc::Receiver<Result<Response, FleetError>>, FleetError> {
        let (reply, rx) = mpsc::channel();
        self.submit_reply(request, deadline, Reply::Oneshot(reply))?;
        Ok(rx)
    }

    /// Admission with an arbitrary reply sink: push or shed, never
    /// blocks.
    fn submit_reply(
        &self,
        request: Request,
        deadline: Instant,
        reply: Reply,
    ) -> Result<(), FleetError> {
        // Sampling is decided outside the queue lock: a pure hash of
        // the request, cheap and contention-free.
        let trace = request.trace_ctx();
        {
            let mut q = self.queue.lock().expect("queue lock poisoned");
            if q.closed {
                return Err(FleetError::ShuttingDown);
            }
            if q.jobs.len() >= self.config.queue_capacity {
                divot_telemetry::inc("fleet.shed");
                return Err(FleetError::Overloaded {
                    depth: q.jobs.len(),
                    capacity: self.config.queue_capacity,
                    reason: ShedReason::QueueFull,
                });
            }
            q.jobs.push_back(Job {
                request,
                deadline,
                submitted: Instant::now(),
                trace,
                reply,
            });
            self.note_depth(q.jobs.len());
        }
        self.not_empty.notify_one();
        Ok(())
    }

    /// Batched admission under one queue-lock acquisition: each job is
    /// admitted or shed independently (the first shed does not poison
    /// the rest — later jobs still fail `QueueFull`, but the outcome
    /// vector is per-job). Workers are woken once per admitted batch.
    fn submit_batch(
        &self,
        jobs: Vec<(Request, Instant, Reply)>,
    ) -> Vec<Result<(), FleetError>> {
        let mut outcomes = Vec::with_capacity(jobs.len());
        let mut admitted = 0usize;
        {
            let mut q = self.queue.lock().expect("queue lock poisoned");
            for (request, deadline, reply) in jobs {
                if q.closed {
                    outcomes.push(Err(FleetError::ShuttingDown));
                    continue;
                }
                if q.jobs.len() >= self.config.queue_capacity {
                    divot_telemetry::inc("fleet.shed");
                    outcomes.push(Err(FleetError::Overloaded {
                        depth: q.jobs.len(),
                        capacity: self.config.queue_capacity,
                        reason: ShedReason::QueueFull,
                    }));
                    continue;
                }
                let trace = request.trace_ctx();
                q.jobs.push_back(Job {
                    request,
                    deadline,
                    submitted: Instant::now(),
                    trace,
                    reply,
                });
                admitted += 1;
                outcomes.push(Ok(()));
            }
            self.note_depth(q.jobs.len());
        }
        for _ in 0..admitted {
            self.not_empty.notify_one();
        }
        outcomes
    }

    /// Worker loop: drain jobs until the queue closes. The L1 verdict
    /// tier lives here — owned by this thread, untouched by any lock.
    fn work(&self) {
        let mut l1 = WorkerTier::new();
        loop {
            let job = {
                let mut q = self.queue.lock().expect("queue lock poisoned");
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        self.note_depth(q.jobs.len());
                        break Some(job);
                    }
                    if q.closed {
                        break None;
                    }
                    q = self
                        .not_empty
                        .wait(q)
                        .expect("queue lock poisoned");
                }
            };
            let Some(job) = job else { return };
            let wait = job.submitted.elapsed();
            if let Some(h) = divot_telemetry::histogram_with(
                "fleet.queue.wait_ns",
                divot_telemetry::Histogram::default_latency_ns,
            ) {
                h.observe(wait.as_nanos() as f64);
            }
            if let Some(ctx) = job.trace {
                ctx.record(job.request.kind(), "queue_wait", wait);
            }
            let outcome = if Instant::now() > job.deadline {
                divot_telemetry::inc("fleet.deadline_misses");
                Err(FleetError::DeadlineExceeded)
            } else {
                self.handle(&job.request, job.trace, &mut l1)
            };
            let total = job.submitted.elapsed();
            let elapsed = total.as_secs_f64();
            divot_telemetry::observe("fleet.request.latency", elapsed);
            divot_telemetry::observe(job.request.latency_metric(), elapsed);
            if let Some(ctx) = job.trace {
                ctx.record(job.request.kind(), "total", total);
            }
            job.reply.deliver(outcome);
        }
    }

    /// Acquire with the transient-fault retry loop: attempt, and on a
    /// deterministic fault roll sleep a jittered exponential backoff and
    /// try again up to `max_attempts`.
    fn acquire_with_retry(
        &self,
        device: &str,
        nonce: u64,
        trace: Option<TraceCtx>,
        kind: &'static str,
    ) -> Result<divot_dsp::waveform::Waveform, FleetError> {
        let retry = self.config.retry;
        let attempts = retry.max_attempts.max(1);
        for attempt in 0..attempts {
            if self
                .sim
                .transient_fault(device, nonce, attempt, retry.failure_prob)
            {
                divot_telemetry::inc("fleet.retries");
                if attempt + 1 < attempts {
                    std::thread::sleep(self.backoff(device, nonce, attempt));
                }
                continue;
            }
            return self
                .sim
                .acquire_traced(device, nonce, trace, kind)
                .ok_or_else(|| FleetError::UnknownDevice(device.to_owned()));
        }
        divot_telemetry::emit(
            "fleet.acquisition_failed",
            &[
                ("device", Value::from(device)),
                ("attempts", Value::from(u64::from(attempts))),
            ],
        );
        Err(FleetError::AcquisitionFailed { attempts })
    }

    /// Jittered exponential backoff before retrying `attempt`: the
    /// jitter fraction derives from `(device, nonce, attempt)`, so the
    /// wait schedule is reproducible without being synchronized across
    /// requests (no thundering herd).
    fn backoff(&self, device: &str, nonce: u64, attempt: u32) -> Duration {
        let retry = self.config.retry;
        let mut rng = DivotRng::derive(
            mix_seed(nonce, 0xB0FF_0000 | u64::from(attempt)),
            device.len() as u64,
        );
        let jitter = 1.0 + retry.jitter.max(0.0) * rng.uniform();
        let exp = 1u32 << attempt.min(16);
        retry.base_backoff.mul_f64(f64::from(exp) * jitter)
    }

    /// The cache key of a memoizable request: `None` for kinds that are
    /// never memoized (enroll mutates, snapshots are cheap listings) and
    /// for devices the fleet does not know.
    fn verdict_key(&self, kind: VerdictKind, device: &str, nonce: u64) -> Option<VerdictKey> {
        let index = self.sim.device_index(device)?;
        Some(VerdictKey {
            kind,
            device: index as u32,
            generation: self.store.generation(device),
            nonce,
        })
    }

    /// Outcome counters, incremented once per *served* response —
    /// cached and freshly computed verdicts count alike, so the
    /// accept/reject/detection totals always equal responses delivered.
    fn note_outcome(&self, response: &Response) {
        match response {
            Response::Enrolled { .. } => divot_telemetry::inc("fleet.enrolls"),
            Response::EnrolledBatch { devices } => {
                divot_telemetry::add("fleet.enrolls", devices.len() as u64);
            }
            Response::Verdict { accepted, .. } => divot_telemetry::inc(if *accepted {
                "fleet.verify.accepts"
            } else {
                "fleet.verify.rejects"
            }),
            Response::Scan { detected, .. } => {
                if *detected {
                    divot_telemetry::inc("fleet.scan.detections");
                }
            }
            Response::CohortModel { .. } => divot_telemetry::inc("fleet.cohort.model.rebuilds"),
            Response::Intake { reports } => {
                divot_telemetry::add("fleet.cohort.scans", reports.len() as u64);
                for report in reports {
                    divot_telemetry::inc(match report.verdict {
                        Verdict::Genuine => "fleet.cohort.verdict.genuine",
                        Verdict::Counterfeit => "fleet.cohort.verdict.counterfeit",
                        Verdict::Tampered => "fleet.cohort.verdict.tampered",
                        Verdict::Inconclusive => "fleet.cohort.verdict.inconclusive",
                    });
                }
            }
            Response::Snapshot { .. } | Response::StatsSnapshot { .. } => {}
        }
    }

    fn handle(
        &self,
        request: &Request,
        trace: Option<TraceCtx>,
        l1: &mut WorkerTier<Response>,
    ) -> Result<Response, FleetError> {
        // Memoized fast path. The generation in the key is read before
        // the acquisition: a re-enrollment racing a verify can at worst
        // store the verdict under an already-orphaned generation (never
        // served again), exactly as if the verify had lost the race
        // without a cache.
        let key = match request {
            Request::Verify { device, nonce } => {
                self.verdict_key(VerdictKind::Verify, device, *nonce)
            }
            Request::MonitorScan { device, nonce } => {
                self.verdict_key(VerdictKind::Scan, device, *nonce)
            }
            Request::Enroll { .. }
            | Request::EnrollBatch { .. }
            | Request::CohortEnroll { .. }
            | Request::IntakeScan { .. }
            | Request::RegistrySnapshot
            | Request::Stats => None,
        };
        if let Some(k) = &key {
            let span = trace.map(|c| c.span(request.kind(), "cache_lookup"));
            let hit = self.verdicts.lookup(l1, k);
            drop(span);
            if let Some(response) = hit {
                self.note_outcome(&response);
                return Ok(response);
            }
        }
        let outcome = self.compute(request, trace);
        if let Ok(response) = &outcome {
            self.note_outcome(response);
            if let Some(k) = key {
                self.verdicts.store(l1, k, response.clone());
            }
        }
        outcome
    }

    /// The `UnknownDevice` error of the first row of `devices` the
    /// fleet does not know (batch admission failure reporting).
    fn missing_device(&self, devices: &[(String, u64)]) -> FleetError {
        let missing = devices
            .iter()
            .find(|(name, _)| self.sim.device_index(name).is_none())
            .map_or_else(String::new, |(name, _)| name.clone());
        FleetError::UnknownDevice(missing)
    }

    /// Serve `request` from scratch (the cache-miss path).
    fn compute(&self, request: &Request, trace: Option<TraceCtx>) -> Result<Response, FleetError> {
        match request {
            Request::Enroll { device, nonce } => {
                let pairing = self
                    .sim
                    .enroll(device, *nonce)
                    .ok_or_else(|| FleetError::UnknownDevice(device.clone()))?;
                // Calibrate the device's tamper threshold against known-
                // clean acquisitions whose nonces derive from the enroll
                // nonce: the threshold is a pure function of the request.
                let cleans: Vec<_> = (1..=4)
                    .map(|k| {
                        self.sim
                            .acquire(device, mix_seed(*nonce, 0xCA11_B000 | k))
                            .expect("device exists: enrolled above")
                    })
                    .collect();
                let detector = TamperDetector::calibrated(
                    self.config.tamper,
                    pairing.master.iip(),
                    &cleans,
                    self.config.tamper_margin,
                );
                self.thresholds
                    .write()
                    .expect("threshold lock poisoned")
                    .insert(device.clone(), detector.policy().threshold);
                self.store.register(device, pairing);
                Ok(Response::Enrolled {
                    device: device.clone(),
                    shard: self.store.shard_of(device) as u32,
                })
            }
            Request::EnrollBatch { devices } => {
                let policy = ExecPolicy::auto();
                // All-or-nothing: `enroll_batch` refuses the whole batch
                // when any row names an unknown device, before enrolling
                // anything.
                let pairings = self
                    .sim
                    .enroll_batch(devices, policy)
                    .ok_or_else(|| self.missing_device(devices))?;
                // One batched acquisition covers every device's clean
                // calibration window (the same four derived nonces a solo
                // enroll uses), so the engine fan-out is paid once for
                // the cohort instead of once per device.
                let clean_items: Vec<(String, u64)> = devices
                    .iter()
                    .flat_map(|(name, nonce)| {
                        (1..=4).map(|k| (name.clone(), mix_seed(*nonce, 0xCA11_B000 | k)))
                    })
                    .collect();
                let cleans = self
                    .sim
                    .acquire_batch(&clean_items, policy)
                    .expect("devices exist: enrolled above");
                {
                    let mut thresholds =
                        self.thresholds.write().expect("threshold lock poisoned");
                    for (i, ((name, _), pairing)) in devices.iter().zip(&pairings).enumerate() {
                        let detector = TamperDetector::calibrated(
                            self.config.tamper,
                            pairing.master.iip(),
                            &cleans[i * 4..i * 4 + 4],
                            self.config.tamper_margin,
                        );
                        thresholds.insert(name.clone(), detector.policy().threshold);
                    }
                }
                let rows: Vec<_> = devices
                    .iter()
                    .map(|(name, _)| name.clone())
                    .zip(pairings)
                    .collect();
                let shards = self.store.register_batch(rows);
                Ok(Response::EnrolledBatch {
                    devices: devices
                        .iter()
                        .map(|(name, _)| name.clone())
                        .zip(shards.into_iter().map(|s| s as u32))
                        .collect(),
                })
            }
            Request::Verify { device, nonce } => {
                let measured = self.acquire_with_retry(device, *nonce, trace, "verify")?;
                let span = trace.map(|c| c.span("verify", "store_lock"));
                let decision = self
                    .store
                    .with_pairing(device, |p| self.authenticator.verify(&p.master, &measured))
                    .ok_or_else(|| FleetError::UnknownDevice(device.clone()))?;
                drop(span);
                Ok(Response::Verdict {
                    device: device.clone(),
                    accepted: decision.is_accept(),
                    similarity: decision.similarity(),
                })
            }
            Request::MonitorScan { device, nonce } => {
                let measured = self.acquire_with_retry(device, *nonce, trace, "scan")?;
                let threshold = self
                    .thresholds
                    .read()
                    .expect("threshold lock poisoned")
                    .get(device)
                    .copied()
                    .unwrap_or(self.config.tamper.threshold);
                let detector = TamperDetector::new(TamperPolicy {
                    threshold,
                    ..self.config.tamper
                });
                let span = trace.map(|c| c.span("scan", "store_lock"));
                let report = self
                    .store
                    .with_pairing(device, |p| detector.scan(p.master.iip(), &measured))
                    .ok_or_else(|| FleetError::UnknownDevice(device.clone()))?;
                drop(span);
                Ok(Response::Scan {
                    device: device.clone(),
                    detected: report.detected,
                    max_error: report.max_error,
                    location_m: report.location.map(|m| m.0),
                })
            }
            Request::CohortEnroll { devices } => {
                let policy = ExecPolicy::auto();
                let span = trace.map(|c| c.span("cohort_enroll", "acquire"));
                // All-or-nothing, like EnrollBatch: an unknown device
                // fails the batch before anything is acquired.
                let fingerprints = self
                    .sim
                    .acquire_batch(devices, policy)
                    .ok_or_else(|| self.missing_device(devices))?;
                drop(span);
                let span = trace.map(|c| c.span("cohort_enroll", "learn"));
                let views: Vec<&[f64]> = fingerprints.iter().map(|w| w.samples()).collect();
                let model = PopulationModel::learn(&views, self.config.cohort)
                    .map_err(|e| FleetError::CohortRejected(e.to_string()))?;
                drop(span);
                let response = Response::CohortModel {
                    cohort_size: model.members().len() as u32,
                    excluded: model.excluded().len() as u32,
                    segments: model.segments() as u32,
                };
                *self.cohort.write().expect("cohort lock poisoned") = Some(Arc::new(model));
                Ok(response)
            }
            Request::IntakeScan { devices } => {
                // Clone the Arc and drop the lock before acquiring:
                // every verdict of this scan comes from exactly one
                // model, and a concurrent relearn never blocks on us.
                let model = self
                    .cohort
                    .read()
                    .expect("cohort lock poisoned")
                    .clone()
                    .ok_or(FleetError::NoCohortModel)?;
                let span = trace.map(|c| c.span("intake_scan", "acquire"));
                let fingerprints = self
                    .sim
                    .acquire_batch(devices, ExecPolicy::auto())
                    .ok_or_else(|| self.missing_device(devices))?;
                drop(span);
                let span = trace.map(|c| c.span("intake_scan", "score"));
                let reports = devices
                    .iter()
                    .zip(&fingerprints)
                    .map(|((name, _), w)| {
                        let (verdict, score) = model.attest(w.samples());
                        IntakeReport {
                            device: name.clone(),
                            verdict,
                            score: score.score,
                            similarity: score.similarity,
                            max_z: score.max_z,
                            deviant_segments: score.deviant_segments as u32,
                            worst_segment: score.worst_segment as u32,
                        }
                    })
                    .collect();
                drop(span);
                Ok(Response::Intake { reports })
            }
            Request::RegistrySnapshot => Ok(Response::Snapshot {
                devices: self
                    .store
                    .device_names()
                    .into_iter()
                    .map(|(n, s)| (n, s as u32))
                    .collect(),
            }),
            Request::Stats => Ok(Response::StatsSnapshot {
                stats: self.stats(),
            }),
        }
    }

    /// Build the operational-stats export: queue state from the service
    /// itself, metric rows from the installed telemetry default (empty
    /// rows when none is installed). Histogram quantiles are computed
    /// here, against a detached snapshot — the export never holds any
    /// hot-path lock while interpolating.
    fn stats(&self) -> FleetStats {
        let depth = self.queue.lock().expect("queue lock poisoned").jobs.len();
        let mut stats = FleetStats {
            queue_depth: depth as u32,
            queue_capacity: self.config.queue_capacity as u32,
            ..FleetStats::default()
        };
        if let Some(t) = divot_telemetry::global() {
            for (name, snap) in t.registry().snapshot() {
                match snap {
                    MetricSnapshot::Counter(v) => stats.counters.push((name, v)),
                    MetricSnapshot::Gauge(v) => stats.gauges.push((name, v)),
                    MetricSnapshot::Histogram(h) => {
                        let qs = h.quantiles(&[0.5, 0.9, 0.99]);
                        stats.histograms.push((
                            name,
                            h.count(),
                            qs[0].unwrap_or(0.0),
                            qs[1].unwrap_or(0.0),
                            qs[2].unwrap_or(0.0),
                        ));
                    }
                }
            }
        }
        stats
    }
}

/// A running fleet service: owns the worker pool; dropping it drains the
/// queue close signal and joins every worker.
pub struct FleetService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for FleetService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetService")
            .field("workers", &self.workers.len())
            .field("devices", &self.inner.sim.device_count())
            .field("queue_capacity", &self.inner.config.queue_capacity)
            .finish()
    }
}

impl FleetService {
    /// Start the service over a simulated fleet with a fresh store.
    pub fn start(config: FleetConfig, sim: SimulatedFleet) -> Self {
        let store = FleetStore::new(config.shards.max(1));
        Self::start_with_store(config, sim, store)
    }

    /// Start the service over a pre-loaded store (warm restart from
    /// persisted shard banks).
    pub fn start_with_store(config: FleetConfig, sim: SimulatedFleet, store: FleetStore) -> Self {
        let workers = if config.workers == 0 {
            divot_dsp::par::max_threads()
        } else {
            config.workers
        };
        let inner = Arc::new(ServiceInner {
            authenticator: Authenticator::new(config.auth),
            thresholds: std::sync::RwLock::new(std::collections::HashMap::new()),
            verdicts: TwoTierCache::new(config.verdict_cache_capacity),
            cohort: std::sync::RwLock::new(None),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            config,
            sim,
            store,
        });
        divot_telemetry::set_gauge("fleet.workers", workers as f64);
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fleet-worker-{i}"))
                    .spawn(move || inner.work())
                    .expect("spawn fleet worker")
            })
            .collect();
        Self {
            inner,
            workers: handles,
        }
    }

    /// Number of worker threads serving the queue.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// An in-process client handle (cheap to clone, usable from any
    /// thread).
    pub fn client(&self) -> FleetClient {
        FleetClient {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Persist the store's shard banks to `dir` (atomic per shard).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Io`] on filesystem failures.
    pub fn persist(&self, dir: &std::path::Path) -> Result<usize, FleetError> {
        self.inner.store.persist(dir)
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().expect("queue lock poisoned");
            q.closed = true;
        }
        self.inner.not_empty.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// An in-process handle for submitting requests to a [`FleetService`].
///
/// The full enroll → verify round trip:
///
/// ```
/// use divot_fleet::{FleetConfig, FleetService, Request, Response};
/// use divot_fleet::sim::{FleetSimConfig, SimulatedFleet};
///
/// let service = FleetService::start(
///     FleetConfig::default().with_workers(1),
///     SimulatedFleet::new(FleetSimConfig::fast(1, 7)),
/// );
/// let client = service.client();
/// client.call(Request::Enroll { device: "bus-000".into(), nonce: 1 })?;
/// match client.call(Request::Verify { device: "bus-000".into(), nonce: 2 })? {
///     Response::Verdict { accepted, similarity, .. } => {
///         assert!(accepted, "genuine device must verify (s={similarity})");
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// # Ok::<(), divot_fleet::FleetError>(())
/// ```
#[derive(Clone)]
pub struct FleetClient {
    inner: Arc<ServiceInner>,
}

impl std::fmt::Debug for FleetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetClient")
            .field("devices", &self.inner.sim.device_count())
            .finish()
    }
}

impl FleetClient {
    /// Submit and wait, under the service's default deadline.
    ///
    /// # Errors
    ///
    /// Any [`FleetError`]: sheds ([`FleetError::Overloaded`]) surface
    /// immediately, other failures when the worker reports them.
    pub fn call(&self, request: Request) -> Result<Response, FleetError> {
        self.call_with_deadline(request, self.inner.config.default_deadline)
    }

    /// Submit and wait with an explicit deadline measured from now.
    ///
    /// # Errors
    ///
    /// Any [`FleetError`], including [`FleetError::DeadlineExceeded`]
    /// when the deadline lapses before a worker dequeues the request.
    pub fn call_with_deadline(
        &self,
        request: Request,
        deadline: Duration,
    ) -> Result<Response, FleetError> {
        let rx = self.inner.submit(request, Instant::now() + deadline)?;
        rx.recv().unwrap_or(Err(FleetError::ShuttingDown))
    }

    /// Submit without blocking: the outcome lands on `queue` under
    /// `token` once a worker finishes. The event-loop entry point — the
    /// reactor tags each wire request and keeps reading other
    /// connections while workers churn.
    ///
    /// # Errors
    ///
    /// Admission failures ([`FleetError::Overloaded`],
    /// [`FleetError::ShuttingDown`]) surface immediately; every other
    /// outcome is delivered through `queue`.
    pub fn submit_tagged(
        &self,
        request: Request,
        deadline: Duration,
        token: u64,
        queue: &Arc<CompletionQueue>,
    ) -> Result<(), FleetError> {
        self.inner.submit_reply(
            request,
            Instant::now() + deadline,
            Reply::Tagged {
                token,
                queue: Arc::clone(queue),
            },
        )
    }

    /// Batched [`submit_tagged`](Self::submit_tagged): one queue-lock
    /// acquisition admits (or sheds) every job, returning per-job
    /// outcomes in input order. Emits `fleet.reactor.batch_width`.
    pub fn submit_batch_tagged(
        &self,
        jobs: Vec<(Request, Duration, u64)>,
        queue: &Arc<CompletionQueue>,
    ) -> Vec<Result<(), FleetError>> {
        let now = Instant::now();
        divot_telemetry::observe("fleet.reactor.batch_width", jobs.len() as f64);
        let jobs = jobs
            .into_iter()
            .map(|(request, deadline, token)| {
                (
                    request,
                    now + deadline,
                    Reply::Tagged {
                        token,
                        queue: Arc::clone(queue),
                    },
                )
            })
            .collect();
        self.inner.submit_batch(jobs)
    }

    /// Serve `request` from the shared verdict cache without touching
    /// the worker pool: `Some` only for memoizable kinds
    /// (verify/scan) whose verdict is already cached under the device's
    /// current enrollment generation. The returned response is
    /// bit-for-bit what a worker would produce, and outcome counters
    /// advance exactly as for a worker-served response.
    pub fn try_cached(&self, request: &Request) -> Option<Response> {
        let key = match request {
            Request::Verify { device, nonce } => {
                self.inner.verdict_key(VerdictKind::Verify, device, *nonce)?
            }
            Request::MonitorScan { device, nonce } => {
                self.inner.verdict_key(VerdictKind::Scan, device, *nonce)?
            }
            Request::Enroll { .. }
            | Request::EnrollBatch { .. }
            | Request::CohortEnroll { .. }
            | Request::IntakeScan { .. }
            | Request::RegistrySnapshot
            | Request::Stats => return None,
        };
        let response = self.inner.verdicts.peek(&key)?;
        self.inner.note_outcome(&response);
        Some(response)
    }

    /// Build a [`FleetStats`] export directly, without a queue round
    /// trip — the reactor transport serves [`Request::Stats`] through
    /// this so a saturated worker pool can never delay an operator's
    /// health probe.
    pub fn stats(&self) -> FleetStats {
        self.inner.stats()
    }

    /// Whether `device` exists in the simulated fleet (cheap O(1) map
    /// probe — subscription registration validates against this).
    pub fn device_known(&self, device: &str) -> bool {
        self.inner.sim.device_index(device).is_some()
    }

    /// The deadline applied when a caller does not name one.
    pub fn default_deadline(&self) -> Duration {
        self.inner.config.default_deadline
    }

    /// The admission queue's capacity (shed-report context).
    pub fn queue_capacity(&self) -> usize {
        self.inner.config.queue_capacity
    }

    /// Current queue depth (diagnostics, load generators).
    pub fn queue_depth(&self) -> usize {
        self.inner
            .queue
            .lock()
            .expect("queue lock poisoned")
            .jobs
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::FleetSimConfig;

    fn service(devices: usize, workers: usize) -> FleetService {
        FleetService::start(
            FleetConfig::default().with_workers(workers),
            SimulatedFleet::new(FleetSimConfig::fast(devices, 7)),
        )
    }

    #[test]
    fn enroll_verify_scan_snapshot_lifecycle() {
        let svc = service(3, 2);
        let client = svc.client();
        for i in 0..3 {
            let device = SimulatedFleet::device_name(i);
            match client
                .call(Request::Enroll {
                    device: device.clone(),
                    nonce: 1,
                })
                .unwrap()
            {
                Response::Enrolled { device: d, .. } => assert_eq!(d, device),
                other => panic!("unexpected {other:?}"),
            }
        }
        match client
            .call(Request::Verify {
                device: "bus-001".into(),
                nonce: 50,
            })
            .unwrap()
        {
            Response::Verdict {
                accepted,
                similarity,
                ..
            } => {
                assert!(accepted, "genuine device must verify (s={similarity})");
            }
            other => panic!("unexpected {other:?}"),
        }
        match client
            .call(Request::MonitorScan {
                device: "bus-002".into(),
                nonce: 51,
            })
            .unwrap()
        {
            Response::Scan { detected, .. } => assert!(!detected, "clean bus must scan clean"),
            other => panic!("unexpected {other:?}"),
        }
        match client.call(Request::RegistrySnapshot).unwrap() {
            Response::Snapshot { devices } => {
                assert_eq!(devices.len(), 3);
                assert_eq!(devices[0].0, "bus-000");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batched_enrollment_matches_serial_enrolls() {
        // One service enrolls device-by-device, the other takes the same
        // rows as a single EnrollBatch: the registry, the calibrated
        // thresholds, and every downstream verdict must be identical.
        let serial = service(4, 2);
        let batched = service(4, 2);
        let sc = serial.client();
        let bc = batched.client();
        let rows: Vec<(String, u64)> = (0..4)
            .map(|i| (SimulatedFleet::device_name(i), 30 + i as u64))
            .collect();
        for (device, nonce) in &rows {
            sc.call(Request::Enroll {
                device: device.clone(),
                nonce: *nonce,
            })
            .unwrap();
        }
        match bc
            .call(Request::EnrollBatch {
                devices: rows.clone(),
            })
            .unwrap()
        {
            Response::EnrolledBatch { devices } => {
                assert_eq!(devices.len(), rows.len(), "one row per request row");
                for ((name, _), (reported, shard)) in rows.iter().zip(&devices) {
                    assert_eq!(name, reported, "rows come back in request order");
                    assert_eq!(
                        *shard as usize,
                        batched.inner.store.shard_of(name),
                        "reported shard must match the store's placement"
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // Verify and scan are pure functions of the stored pairing and the
        // calibrated threshold, so identical responses prove identical
        // registry state.
        for (device, _) in &rows {
            let verify = Request::Verify {
                device: device.clone(),
                nonce: 900,
            };
            assert_eq!(sc.call(verify.clone()).unwrap(), bc.call(verify).unwrap());
            let scan = Request::MonitorScan {
                device: device.clone(),
                nonce: 901,
            };
            assert_eq!(sc.call(scan.clone()).unwrap(), bc.call(scan).unwrap());
        }
        assert_eq!(
            sc.call(Request::RegistrySnapshot).unwrap(),
            bc.call(Request::RegistrySnapshot).unwrap()
        );
    }

    #[test]
    fn enroll_batch_with_unknown_device_enrolls_nothing() {
        let svc = service(2, 1);
        let client = svc.client();
        let err = client
            .call(Request::EnrollBatch {
                devices: vec![("bus-000".into(), 1), ("bus-777".into(), 1)],
            })
            .unwrap_err();
        assert_eq!(err, FleetError::UnknownDevice("bus-777".into()));
        match client.call(Request::RegistrySnapshot).unwrap() {
            Response::Snapshot { devices } => {
                assert!(devices.is_empty(), "all-or-nothing: no partial enrollment");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn verify_before_enroll_is_unknown_device() {
        let svc = service(1, 1);
        let err = svc
            .client()
            .call(Request::Verify {
                device: "bus-000".into(),
                nonce: 0,
            })
            .unwrap_err();
        assert_eq!(err, FleetError::UnknownDevice("bus-000".into()));
        let err = svc
            .client()
            .call(Request::Enroll {
                device: "bus-777".into(),
                nonce: 0,
            })
            .unwrap_err();
        assert_eq!(err, FleetError::UnknownDevice("bus-777".into()));
    }

    #[test]
    fn overload_sheds_typed_rejections() {
        // One worker, tiny queue: a burst must shed rather than buffer.
        let svc = FleetService::start(
            FleetConfig::default()
                .with_workers(1)
                .with_queue_capacity(2),
            SimulatedFleet::new(FleetSimConfig::fast(1, 7)),
        );
        let client = svc.client();
        client
            .call(Request::Enroll {
                device: "bus-000".into(),
                nonce: 1,
            })
            .unwrap();
        // Saturate: submit far more than capacity without reading replies.
        let mut receivers = Vec::new();
        let mut sheds = 0;
        for nonce in 0..64 {
            match svc.inner.submit(
                Request::Verify {
                    device: "bus-000".into(),
                    nonce,
                },
                Instant::now() + Duration::from_secs(10),
            ) {
                Ok(rx) => receivers.push(rx),
                Err(FleetError::Overloaded {
                    depth,
                    capacity,
                    reason,
                }) => {
                    assert!(depth >= capacity, "shed below capacity");
                    assert_eq!(reason, ShedReason::QueueFull);
                    sheds += 1;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(sheds > 0, "a 64-burst against capacity 2 must shed");
        // Accepted requests complete fine under pressure.
        for rx in receivers {
            match rx.recv().unwrap().unwrap() {
                Response::Verdict { accepted, .. } => assert!(accepted),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn expired_deadline_rejected_at_dequeue() {
        let svc = service(1, 1);
        let client = svc.client();
        client
            .call(Request::Enroll {
                device: "bus-000".into(),
                nonce: 1,
            })
            .unwrap();
        // A deadline already in the past must come back DeadlineExceeded.
        let err = client
            .call_with_deadline(
                Request::Verify {
                    device: "bus-000".into(),
                    nonce: 2,
                },
                Duration::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, FleetError::DeadlineExceeded);
    }

    #[test]
    fn transient_faults_retry_and_exhaust() {
        // Certain failure: every attempt faults, the budget exhausts.
        let mut config = FleetConfig::default().with_workers(1);
        config.retry = RetryPolicy {
            failure_prob: 1.0,
            max_attempts: 3,
            base_backoff: Duration::from_micros(10),
            jitter: 0.5,
        };
        let svc = FleetService::start(
            config,
            SimulatedFleet::new(FleetSimConfig::fast(1, 7)),
        );
        let client = svc.client();
        client
            .call(Request::Enroll {
                device: "bus-000".into(),
                nonce: 1,
            })
            .unwrap();
        let err = client
            .call(Request::Verify {
                device: "bus-000".into(),
                nonce: 9,
            })
            .unwrap_err();
        assert_eq!(err, FleetError::AcquisitionFailed { attempts: 3 });

        // Moderate fault rate: retries absorb the faults, verdicts land.
        let mut config = FleetConfig::default().with_workers(2);
        config.retry = RetryPolicy {
            failure_prob: 0.3,
            max_attempts: 6,
            base_backoff: Duration::from_micros(10),
            jitter: 0.5,
        };
        let svc = FleetService::start(
            config,
            SimulatedFleet::new(FleetSimConfig::fast(1, 7)),
        );
        let client = svc.client();
        client
            .call(Request::Enroll {
                device: "bus-000".into(),
                nonce: 1,
            })
            .unwrap();
        for nonce in 0..16 {
            match client.call(Request::Verify {
                device: "bus-000".into(),
                nonce,
            }) {
                Ok(Response::Verdict { accepted, .. }) => assert!(accepted),
                Ok(other) => panic!("unexpected {other:?}"),
                Err(e) => panic!("retry should have absorbed faults: {e}"),
            }
        }
    }

    #[test]
    fn repeat_requests_are_served_from_the_verdict_cache_identically() {
        let svc = service(2, 2);
        let client = svc.client();
        for i in 0..2 {
            client
                .call(Request::Enroll {
                    device: SimulatedFleet::device_name(i),
                    nonce: 1,
                })
                .unwrap();
        }
        let verify = Request::Verify {
            device: "bus-000".into(),
            nonce: 77,
        };
        let scan = Request::MonitorScan {
            device: "bus-001".into(),
            nonce: 78,
        };
        let first = (client.call(verify.clone()).unwrap(), client.call(scan.clone()).unwrap());
        assert!(svc.inner.verdicts.shared_len() >= 2, "verdicts memoized");
        for _ in 0..3 {
            assert_eq!(client.call(verify.clone()).unwrap(), first.0);
            assert_eq!(client.call(scan.clone()).unwrap(), first.1);
        }
    }

    #[test]
    fn re_enrollment_invalidates_cached_verdicts() {
        let svc = service(1, 1);
        let client = svc.client();
        let enroll = |nonce| {
            client
                .call(Request::Enroll {
                    device: "bus-000".into(),
                    nonce,
                })
                .unwrap()
        };
        let verify = || match client
            .call(Request::Verify {
                device: "bus-000".into(),
                nonce: 500,
            })
            .unwrap()
        {
            Response::Verdict { similarity, .. } => similarity,
            other => panic!("unexpected {other:?}"),
        };
        enroll(1);
        let before = verify();
        assert_eq!(verify(), before, "repeat under the same pairing");
        // Re-enroll with a fresh nonce: a different stored fingerprint,
        // so the same verify request must be recomputed, not replayed.
        enroll(2);
        let after = verify();
        assert_ne!(
            before, after,
            "verify must reflect the new pairing, not a stale cache entry"
        );
    }

    #[test]
    fn disabled_cache_still_serves_identical_verdicts() {
        let svc = FleetService::start(
            FleetConfig::default()
                .with_workers(1)
                .with_verdict_cache_capacity(0),
            SimulatedFleet::new(FleetSimConfig::fast(1, 7)),
        );
        let client = svc.client();
        client
            .call(Request::Enroll {
                device: "bus-000".into(),
                nonce: 1,
            })
            .unwrap();
        let verify = Request::Verify {
            device: "bus-000".into(),
            nonce: 9,
        };
        let a = client.call(verify.clone()).unwrap();
        let b = client.call(verify).unwrap();
        assert_eq!(a, b);
        assert_eq!(svc.inner.verdicts.shared_len(), 0, "capacity 0 memoizes nothing");
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let svc = service(1, 1);
        let client = svc.client();
        drop(svc);
        let err = client.call(Request::RegistrySnapshot).unwrap_err();
        assert_eq!(err, FleetError::ShuttingDown);
    }

    #[test]
    fn concurrent_clients_all_complete() {
        let svc = service(4, 4);
        let client = svc.client();
        for i in 0..4 {
            client
                .call(Request::Enroll {
                    device: SimulatedFleet::device_name(i),
                    nonce: 1,
                })
                .unwrap();
        }
        let results: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|t| {
                    let client = client.clone();
                    scope.spawn(move || {
                        let device = SimulatedFleet::device_name(t % 4);
                        match client
                            .call(Request::Verify {
                                device,
                                nonce: 1000 + t as u64,
                            })
                            .unwrap()
                        {
                            Response::Verdict { accepted, .. } => accepted,
                            other => panic!("unexpected {other:?}"),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&a| a), "all genuine verifies accept");
    }

    #[test]
    fn tagged_submissions_match_blocking_calls_bitwise() {
        let svc = service(2, 2);
        let client = svc.client();
        for i in 0..2 {
            client
                .call(Request::Enroll {
                    device: SimulatedFleet::device_name(i),
                    nonce: 1,
                })
                .unwrap();
        }
        let woken = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let woken2 = Arc::clone(&woken);
        let queue = CompletionQueue::new(move || {
            woken2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        let jobs: Vec<(Request, Duration, u64)> = (0..8)
            .map(|t| {
                (
                    Request::Verify {
                        device: SimulatedFleet::device_name(t % 2),
                        nonce: 9000 + t as u64,
                    },
                    Duration::from_secs(10),
                    t as u64,
                )
            })
            .collect();
        let blocking: Vec<Response> = jobs
            .iter()
            .map(|(r, _, _)| client.call(r.clone()).unwrap())
            .collect();
        let outcomes = client.submit_batch_tagged(jobs, &queue);
        assert!(outcomes.iter().all(Result::is_ok));
        let mut done = Vec::new();
        while done.len() < 8 {
            queue.drain_into(&mut done);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            woken.load(std::sync::atomic::Ordering::Relaxed) >= 1,
            "waker must fire"
        );
        done.sort_by_key(|c| c.token);
        for c in &done {
            assert_eq!(
                c.outcome.as_ref().unwrap(),
                &blocking[c.token as usize],
                "tagged outcome must be bitwise the blocking outcome"
            );
        }
    }

    #[test]
    fn try_cached_serves_only_warm_verdicts_identically() {
        let svc = service(1, 1);
        let client = svc.client();
        client
            .call(Request::Enroll {
                device: "bus-000".into(),
                nonce: 1,
            })
            .unwrap();
        let verify = Request::Verify {
            device: "bus-000".into(),
            nonce: 321,
        };
        assert_eq!(client.try_cached(&verify), None, "cold: not cached yet");
        let served = client.call(verify.clone()).unwrap();
        assert_eq!(
            client.try_cached(&verify),
            Some(served),
            "warm: inline serve must be the identical response"
        );
        assert_eq!(client.try_cached(&Request::RegistrySnapshot), None);
        assert_eq!(
            client.try_cached(&Request::Enroll {
                device: "bus-000".into(),
                nonce: 2
            }),
            None,
            "enrolls are never memoized"
        );
    }

    fn intake_fleet(workers: usize) -> FleetService {
        use crate::sim::Anomaly;
        use divot_txline::attack::Attack;
        // 20 devices; the last two carry supply-chain anomalies the
        // population model has never seen a reference for.
        let sim = FleetSimConfig::fast(20, 7).with_anomalies(vec![
            (18, Anomaly::Counterfeit),
            (19, Anomaly::Tampered(Attack::paper_wiretap())),
        ]);
        FleetService::start(
            FleetConfig::default().with_workers(workers),
            SimulatedFleet::new(sim),
        )
    }

    fn cohort_rows(range: std::ops::Range<usize>, nonce: u64) -> Vec<(String, u64)> {
        range
            .map(|i| (SimulatedFleet::device_name(i), nonce))
            .collect()
    }

    #[test]
    fn intake_scan_before_enroll_has_no_model() {
        let svc = service(2, 1);
        let err = svc
            .client()
            .call(Request::IntakeScan {
                devices: cohort_rows(0..2, 1),
            })
            .unwrap_err();
        assert_eq!(err, FleetError::NoCohortModel);
    }

    #[test]
    fn undersized_cohort_is_rejected_without_installing_a_model() {
        let svc = service(4, 1);
        let client = svc.client();
        let err = client
            .call(Request::CohortEnroll {
                devices: cohort_rows(0..4, 1),
            })
            .unwrap_err();
        assert!(matches!(err, FleetError::CohortRejected(_)), "got {err:?}");
        // The failed enroll must not have half-installed anything.
        let err = client
            .call(Request::IntakeScan {
                devices: cohort_rows(0..1, 2),
            })
            .unwrap_err();
        assert_eq!(err, FleetError::NoCohortModel);
    }

    #[test]
    fn cohort_enroll_with_unknown_device_learns_nothing() {
        let svc = service(8, 1);
        let client = svc.client();
        let mut rows = cohort_rows(0..8, 1);
        rows.push(("bus-999".into(), 1));
        let err = client
            .call(Request::CohortEnroll { devices: rows })
            .unwrap_err();
        assert_eq!(err, FleetError::UnknownDevice("bus-999".into()));
        let err = client
            .call(Request::IntakeScan {
                devices: cohort_rows(0..1, 2),
            })
            .unwrap_err();
        assert_eq!(err, FleetError::NoCohortModel);
    }

    #[test]
    fn intake_lifecycle_flags_planted_anomalies() {
        let svc = intake_fleet(2);
        let client = svc.client();
        // Learn the population from the 18 genuine boards.
        match client
            .call(Request::CohortEnroll {
                devices: cohort_rows(0..18, 11),
            })
            .unwrap()
        {
            Response::CohortModel {
                cohort_size,
                excluded,
                segments,
            } => {
                assert!(cohort_size >= 8, "cohort collapsed to {cohort_size}");
                assert_eq!(cohort_size + excluded, 18);
                assert!(segments > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Intake-scan everything, planted anomalies included.
        let reports = match client
            .call(Request::IntakeScan {
                devices: cohort_rows(0..20, 400),
            })
            .unwrap()
        {
            Response::Intake { reports } => reports,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(reports.len(), 20, "one report per request row");
        let mut genuine_scores = Vec::new();
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.device, SimulatedFleet::device_name(i), "request order");
            if i < 18 {
                assert!(
                    !matches!(r.verdict, Verdict::Counterfeit | Verdict::Tampered),
                    "genuine {} misflagged: {:?} (score {})",
                    r.device,
                    r.verdict,
                    r.score
                );
                genuine_scores.push(r.score);
            }
        }
        // The wire tap deviates far beyond fabrication spread: it must
        // be flagged outright, below every genuine board's score.
        let tap = &reports[19];
        assert!(
            matches!(tap.verdict, Verdict::Counterfeit | Verdict::Tampered),
            "wire tap not flagged: {:?} (score {})",
            tap.verdict,
            tap.score
        );
        let worst_genuine = genuine_scores.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(tap.score < worst_genuine, "{} vs {worst_genuine}", tap.score);
        // A drifted-lot counterfeit overlaps the genuine spread at this
        // cohort size (18 boards), so assert score ordering, not class:
        // it must still rank below the typical genuine board.
        genuine_scores.sort_by(f64::total_cmp);
        let median_genuine = genuine_scores[genuine_scores.len() / 2];
        let fake = &reports[18];
        assert!(
            fake.score < median_genuine,
            "counterfeit must rank below the genuine median ({} vs {median_genuine})",
            fake.score
        );
    }

    #[test]
    fn intake_verdicts_are_bitwise_identical_across_workers_and_batching() {
        let enroll = Request::CohortEnroll {
            devices: cohort_rows(0..18, 11),
        };
        let whole = Request::IntakeScan {
            devices: cohort_rows(0..20, 400),
        };
        let mut baseline: Option<Vec<IntakeReport>> = None;
        for workers in [1usize, 2, 8] {
            let svc = intake_fleet(workers);
            let client = svc.client();
            client.call(enroll.clone()).unwrap();
            let reports = match client.call(whole.clone()).unwrap() {
                Response::Intake { reports } => reports,
                other => panic!("unexpected {other:?}"),
            };
            // Splitting the scan into per-device requests must not move
            // a single bit of any score.
            let mut split = Vec::new();
            for row in cohort_rows(0..20, 400) {
                match client
                    .call(Request::IntakeScan {
                        devices: vec![row],
                    })
                    .unwrap()
                {
                    Response::Intake { reports } => split.extend(reports),
                    other => panic!("unexpected {other:?}"),
                }
            }
            for (a, b) in reports.iter().zip(&split) {
                assert_eq!(a.device, b.device);
                assert_eq!(a.verdict, b.verdict);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.similarity.to_bits(), b.similarity.to_bits());
                assert_eq!(a.max_z.to_bits(), b.max_z.to_bits());
            }
            match &baseline {
                None => baseline = Some(reports),
                Some(base) => {
                    for (a, b) in base.iter().zip(&reports) {
                        assert_eq!(a, b, "{workers} workers changed a verdict");
                        assert_eq!(a.score.to_bits(), b.score.to_bits());
                    }
                }
            }
        }
    }
}
