//! The fleet's enrolled-pairing store: sharded, concurrent, durable.
//!
//! Devices hash onto a fixed number of shards; each shard is one
//! [`FingerprintRegistry`] behind its own `RwLock`, so verifies on
//! different shards never contend and verifies on the same shard share a
//! read lock. Persistence reuses the registry's EPROM bank codec
//! unchanged: every shard serializes to one `shard-NNN.bank` image,
//! written to a temporary file and atomically renamed into place — a
//! crash mid-persist leaves the previous generation intact, never a
//! half-written bank.

use crate::error::FleetError;
use divot_core::registry::{FingerprintRegistry, Pairing};
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Instant;

/// Offset basis of the FNV-1a hash used for shard placement.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Prime of the FNV-1a hash used for shard placement.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the device name: stable across runs and platforms, so a
/// persisted shard layout reloads onto the same shards.
fn fnv1a(name: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A sharded, lock-per-shard store of enrolled bus pairings.
#[derive(Debug)]
pub struct FleetStore {
    shards: Vec<RwLock<FingerprintRegistry>>,
    /// Per-shard enrollment generation: bumped on every
    /// [`register`](Self::register) / [`remove`](Self::remove) that lands
    /// on the shard. Memoized verdicts key on the generation they were
    /// computed under, so a re-enrollment invalidates them without any
    /// cache walk (stale keys simply never match again).
    generations: Vec<AtomicU64>,
    /// Per-shard lock-hold counter names, precomputed at construction —
    /// the static-name convention: mutating paths record holds without a
    /// per-call `format!` allocation.
    hold_names: Vec<String>,
}

impl FleetStore {
    /// An empty store with `shard_count` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn new(shard_count: usize) -> Self {
        assert!(shard_count >= 1, "store needs at least one shard");
        Self {
            shards: (0..shard_count)
                .map(|_| RwLock::new(FingerprintRegistry::new()))
                .collect(),
            generations: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
            hold_names: (0..shard_count)
                .map(|s| format!("fleet.store.shard.{s:03}.lock_hold_ns"))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a device maps to.
    pub fn shard_of(&self, device: &str) -> usize {
        (fnv1a(device) % self.shards.len() as u64) as usize
    }

    /// Total enrolled devices across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .sum()
    }

    /// Whether no device is enrolled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The enrollment generation of the shard `device` maps to.
    ///
    /// Starts at 0 and advances monotonically whenever any pairing on
    /// that shard is registered or removed. Verdicts memoized under an
    /// old generation can therefore never be served after a
    /// re-enrollment: the generation is part of their cache key.
    pub fn generation(&self, device: &str) -> u64 {
        self.generations[self.shard_of(device)].load(Ordering::Acquire)
    }

    /// Record how long a shard's write lock was held: one per-shard
    /// cumulative nanosecond counter (`fleet.store.shard.NNN.lock_hold_ns`)
    /// plus a store-wide histogram (`fleet.store.lock_hold_ns`). Only
    /// mutating paths are instrumented — the verify hot path's read locks
    /// stay allocation- and instrumentation-free.
    fn note_write_hold(&self, shard: usize, held: std::time::Duration) {
        let ns = held.as_nanos() as u64;
        divot_telemetry::add(&self.hold_names[shard], ns);
        if let Some(h) = divot_telemetry::histogram_with(
            "fleet.store.lock_hold_ns",
            divot_telemetry::Histogram::default_latency_ns,
        ) {
            h.observe(ns as f64);
        }
    }

    /// Store (or replace) the pairing for `device`, returning the
    /// previous pairing if one existed. Takes the write lock of exactly
    /// one shard and advances the shard's enrollment generation.
    pub fn register(&self, device: &str, pairing: Pairing) -> Option<Pairing> {
        let shard = self.shard_of(device);
        let mut guard = self.shards[shard].write().expect("shard lock poisoned");
        let t0 = Instant::now();
        let prev = guard.register(device, pairing);
        drop(guard);
        self.note_write_hold(shard, t0.elapsed());
        self.generations[shard].fetch_add(1, Ordering::Release);
        prev
    }

    /// Store a whole batch of pairings, grouped by shard: each touched
    /// shard's write lock is taken exactly once and its enrollment
    /// generation advances exactly once per batch — not once per insert —
    /// so a 1k-board cohort intake invalidates memoized verdicts once per
    /// shard rather than a thousand times. Within a shard, items land in
    /// batch order (a later duplicate wins, matching what serial
    /// [`register`](Self::register) calls would leave behind). Returns
    /// each item's shard index, in item order.
    pub fn register_batch(&self, items: Vec<(String, Pairing)>) -> Vec<usize> {
        let mut shards_of = Vec::with_capacity(items.len());
        let mut by_shard: Vec<Vec<(String, Pairing)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (name, pairing) in items {
            let shard = self.shard_of(&name);
            shards_of.push(shard);
            by_shard[shard].push((name, pairing));
        }
        for (shard, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut guard = self.shards[shard].write().expect("shard lock poisoned");
            let t0 = Instant::now();
            for (name, pairing) in group {
                guard.register(&name, pairing);
            }
            drop(guard);
            self.note_write_hold(shard, t0.elapsed());
            self.generations[shard].fetch_add(1, Ordering::Release);
        }
        shards_of
    }

    /// Run `f` on the stored pairing of `device` under the shard's read
    /// lock; `None` when the device is not enrolled. Lending instead of
    /// cloning keeps verify's hot path free of fingerprint copies.
    pub fn with_pairing<T>(&self, device: &str, f: impl FnOnce(&Pairing) -> T) -> Option<T> {
        self.shards[self.shard_of(device)]
            .read()
            .expect("shard lock poisoned")
            .get(device)
            .map(f)
    }

    /// Remove a device's pairing (decommissioning). Advances the shard's
    /// enrollment generation when a pairing was actually removed.
    pub fn remove(&self, device: &str) -> Option<Pairing> {
        let shard = self.shard_of(device);
        let mut guard = self.shards[shard].write().expect("shard lock poisoned");
        let t0 = Instant::now();
        let prev = guard.remove(device);
        drop(guard);
        self.note_write_hold(shard, t0.elapsed());
        if prev.is_some() {
            self.generations[shard].fetch_add(1, Ordering::Release);
        }
        prev
    }

    /// Every enrolled device as `(name, shard)`, sorted by name — the
    /// registry-snapshot view.
    pub fn device_names(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let reg = shard.read().expect("shard lock poisoned");
            out.extend(reg.names().map(|n| (n.to_owned(), i)));
        }
        out.sort();
        out
    }

    /// Persist every shard into `dir` as `shard-NNN.bank` EPROM bank
    /// images. Each image is written to `shard-NNN.bank.tmp` first and
    /// atomically renamed, so readers and crash recovery only ever see
    /// complete banks. Returns the number of bytes written.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Io`] on any filesystem failure.
    pub fn persist(&self, dir: &Path) -> Result<usize, FleetError> {
        fs::create_dir_all(dir)?;
        let mut bytes = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            let image = shard
                .read()
                .expect("shard lock poisoned")
                .to_bank_bytes();
            let finalp = dir.join(format!("shard-{i:03}.bank"));
            let tmp = dir.join(format!("shard-{i:03}.bank.tmp"));
            {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(&image)?;
                f.sync_all()?;
            }
            fs::rename(&tmp, &finalp)?;
            bytes += image.len();
        }
        Ok(bytes)
    }

    /// Load a store persisted by [`persist`](Self::persist). Missing
    /// shard files load as empty shards (a fresh directory is a valid
    /// empty store).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Io`] on filesystem failures and
    /// [`FleetError::Protocol`] when a bank image fails to decode.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn load(dir: &Path, shard_count: usize) -> Result<Self, FleetError> {
        let store = Self::new(shard_count);
        for i in 0..shard_count {
            let path = dir.join(format!("shard-{i:03}.bank"));
            let image = match fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            let reg = FingerprintRegistry::from_bank_bytes(&image).map_err(|e| {
                FleetError::Protocol(format!("{}: {e}", path.display()))
            })?;
            *store.shards[i].write().expect("shard lock poisoned") = reg;
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divot_core::fingerprint::Fingerprint;
    use divot_dsp::waveform::Waveform;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn pairing(k: f64) -> Pairing {
        let fp = |k: f64| {
            Fingerprint::new(
                Waveform::from_fn(0.0, 22.32e-12, 32, |t| k * (t * 3e9).sin()),
                4,
            )
        };
        Pairing {
            master: fp(k),
            slave: fp(k * 1.1),
        }
    }

    /// A unique scratch directory per call (no external tempdir crate).
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        static SERIAL: AtomicU32 = AtomicU32::new(0);
        let n = SERIAL.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "divot-fleet-{tag}-{}-{n}",
            std::process::id()
        ))
    }

    #[test]
    fn sharding_is_stable_and_in_range() {
        let store = FleetStore::new(4);
        for i in 0..64 {
            let name = format!("bus-{i:03}");
            let s = store.shard_of(&name);
            assert!(s < 4);
            assert_eq!(s, store.shard_of(&name), "placement must be stable");
        }
    }

    #[test]
    fn register_lookup_remove_across_shards() {
        let store = FleetStore::new(3);
        assert!(store.is_empty());
        for i in 0..12 {
            assert!(store.register(&format!("bus-{i}"), pairing(1e-3 * (i + 1) as f64)).is_none());
        }
        assert_eq!(store.len(), 12);
        let count = store
            .with_pairing("bus-7", |p| p.master.enrollment_count())
            .unwrap();
        assert_eq!(count, 4);
        assert!(store.with_pairing("bus-99", |_| ()).is_none());
        assert!(store.remove("bus-7").is_some());
        assert!(store.remove("bus-7").is_none());
        assert_eq!(store.len(), 11);
    }

    #[test]
    fn register_batch_matches_serial_registers() {
        let batch_store = FleetStore::new(4);
        let serial_store = FleetStore::new(4);
        let items: Vec<(String, Pairing)> = (0..12)
            .map(|i| (format!("bus-{i:03}"), pairing(1e-3 * (i + 1) as f64)))
            .collect();
        for (name, p) in &items {
            serial_store.register(name, p.clone());
        }
        let shards = batch_store.register_batch(items.clone());
        assert_eq!(shards.len(), items.len());
        for (k, (name, p)) in items.iter().enumerate() {
            assert_eq!(shards[k], batch_store.shard_of(name));
            let stored = batch_store.with_pairing(name, |q| q.clone()).unwrap();
            assert_eq!(&stored, p);
        }
        assert_eq!(batch_store.device_names(), serial_store.device_names());
    }

    #[test]
    fn register_batch_bumps_generation_once_per_touched_shard() {
        let store = FleetStore::new(4);
        let items: Vec<(String, Pairing)> = (0..12)
            .map(|i| (format!("bus-{i:03}"), pairing(1e-3)))
            .collect();
        store.register_batch(items.clone());
        // Twelve inserts landed, but each touched shard advanced exactly
        // one generation.
        for (name, _) in &items {
            assert_eq!(store.generation(name), 1, "{name}");
        }
        // A later duplicate in the same batch wins, like serial inserts.
        let dup = vec![
            ("bus-000".to_string(), pairing(2e-3)),
            ("bus-000".to_string(), pairing(5e-3)),
        ];
        store.register_batch(dup);
        let stored = store.with_pairing("bus-000", |p| p.clone()).unwrap();
        assert_eq!(stored, pairing(5e-3));
        assert_eq!(store.generation("bus-000"), 2);
    }

    #[test]
    fn device_names_are_sorted_with_shards() {
        let store = FleetStore::new(2);
        for name in ["zz", "aa", "mm"] {
            store.register(name, pairing(1e-3));
        }
        let names = store.device_names();
        assert_eq!(
            names.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["aa", "mm", "zz"]
        );
        for (n, s) in &names {
            assert_eq!(*s, store.shard_of(n));
        }
    }

    #[test]
    fn persist_and_load_round_trip() {
        let dir = scratch_dir("roundtrip");
        let store = FleetStore::new(4);
        for i in 0..10 {
            store.register(&format!("bus-{i:03}"), pairing(1e-3 * (i + 1) as f64));
        }
        let bytes = store.persist(&dir).unwrap();
        assert!(bytes > 0);
        // No .tmp residue after a clean persist.
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "leftover temp file {name:?}"
            );
        }
        let back = FleetStore::load(&dir, 4).unwrap();
        assert_eq!(back.device_names(), store.device_names());
        let (a, b) = (
            store.with_pairing("bus-004", |p| p.clone()).unwrap(),
            back.with_pairing("bus-004", |p| p.clone()).unwrap(),
        );
        assert_eq!(a.master.iip().len(), b.master.iip().len());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_from_empty_dir_is_empty_store() {
        let dir = scratch_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        let store = FleetStore::load(&dir, 8).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.shard_count(), 8);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_corrupt_bank() {
        let dir = scratch_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("shard-000.bank"), b"not a bank").unwrap();
        match FleetStore::load(&dir, 1) {
            Err(FleetError::Protocol(msg)) => assert!(msg.contains("shard-000")),
            other => panic!("expected protocol error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = FleetStore::new(0);
    }
}
