//! Two-tier memoization of fleet verdicts.
//!
//! A verify (or scan) verdict is a pure function of
//! `(fleet seed, device, nonce)` and of the pairing enrolled at the
//! time — so once a request has been answered, answering it again is a
//! lookup, not an engine run. The cache has two tiers:
//!
//! - **L1** ([`WorkerTier`]): owned by one worker thread, completely
//!   lock-free. Repeat traffic that lands on the same worker never
//!   touches shared state.
//! - **L2** ([`TwoTierCache`]): shared across workers behind an
//!   `RwLock`. An L2 hit is promoted into the querying worker's L1, so
//!   hot devices migrate into every worker's private tier.
//!
//! **Invalidation is by construction, not by walk.** Cache keys embed
//! the store's per-shard *enrollment generation*
//! ([`crate::store::FleetStore::generation`]): re-enrolling a device
//! bumps its shard's generation, so every verdict memoized under the
//! old pairing simply never matches again. No tier is ever scanned for
//! stale entries.
//!
//! **Determinism is preserved exactly.** Only successful responses are
//! cached, and a cached response is bit-for-bit the response the
//! worker computed on first serve — so whether a request hits L1, L2,
//! or misses entirely, the client observes the identical bytes.
//! Transient-fault rolls are deterministic per `(device, nonce,
//! attempt)`, which means a request that succeeded once can never fault
//! on a repeat: serving it from cache skips only work whose outcome is
//! already forced.
//!
//! Both tiers evict wholesale when full (the same idiom as the
//! response cache in `divot-txline`): verdicts are tiny, capacities are
//! generous, and a rare full drop keeps the no-LRU-bookkeeping fast
//! path honest. Capacity 0 disables the cache entirely — the
//! determinism suite uses that to A/B cached against uncached runs.

use std::collections::HashMap;
use std::sync::RwLock;

/// What kind of decision a cached verdict answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerdictKind {
    /// An authentication verify.
    Verify,
    /// A tamper monitor scan.
    Scan,
}

/// The identity of one memoizable decision.
///
/// `generation` is the enrollment generation of the device's store
/// shard at lookup time; a re-enrollment (or removal) advances it,
/// orphaning every key minted under the previous pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerdictKey {
    /// Decision kind (verify and scan verdicts never alias).
    pub kind: VerdictKind,
    /// Device index in the simulated fleet (stable for its lifetime).
    pub device: u32,
    /// Store-shard enrollment generation the verdict was computed under.
    pub generation: u64,
    /// The request nonce.
    pub nonce: u64,
}

/// A worker's private L1 tier: plain map, no locks, owned by exactly
/// one worker thread.
#[derive(Debug, Default)]
pub struct WorkerTier<V> {
    map: HashMap<VerdictKey, V>,
}

impl<V> WorkerTier<V> {
    /// An empty tier.
    pub fn new() -> Self {
        Self {
            map: HashMap::new(),
        }
    }

    /// Number of memoized verdicts in this tier.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the tier holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Number of independent L2 stripes. Each stripe is its own `RwLock`,
/// chosen by the FNV hash of the key's device index — the same hash
/// family the [`crate::store::FleetStore`] shards by — so concurrent
/// workers (and the reactor's lock-free [`TwoTierCache::peek`] path)
/// contend only when they touch the same device neighborhood.
const L2_STRIPES: usize = 16;

/// FNV-1a over the device index, reduced to a stripe slot.
fn stripe_of(key: &VerdictKey) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in key.device.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % L2_STRIPES as u64) as usize
}

/// The shared L2 tier plus the lookup/store protocol across both tiers.
///
/// The L2 is striped: `L2_STRIPES` independent `RwLock`ed maps keyed
/// by the FNV device hash, so the 8-worker warm path no longer
/// serializes on a single shared lock (the ROADMAP's named contention
/// candidate).
///
/// ```
/// use divot_fleet::cache::{TwoTierCache, VerdictKey, VerdictKind, WorkerTier};
///
/// let cache: TwoTierCache<&'static str> = TwoTierCache::new(64);
/// let mut l1 = WorkerTier::new();
/// let key = VerdictKey {
///     kind: VerdictKind::Verify,
///     device: 3,
///     generation: 1,
///     nonce: 42,
/// };
/// assert_eq!(cache.lookup(&mut l1, &key), None);
/// cache.store(&mut l1, key, "accepted");
/// // Hits L1 on this worker…
/// assert_eq!(cache.lookup(&mut l1, &key), Some("accepted"));
/// // …and L2 (then L1) on any other worker.
/// let mut other_l1 = WorkerTier::new();
/// assert_eq!(cache.lookup(&mut other_l1, &key), Some("accepted"));
/// assert_eq!(other_l1.len(), 1);
/// // The reactor's inline path peeks L2 without an L1 (no promotion).
/// assert_eq!(cache.peek(&key), Some("accepted"));
/// ```
#[derive(Debug)]
pub struct TwoTierCache<V> {
    stripes: Box<[RwLock<HashMap<VerdictKey, V>>]>,
    /// L1 entry budget; 0 disables the cache.
    capacity: usize,
    /// Entry budget of each L2 stripe (`capacity`, spread).
    stripe_capacity: usize,
}

impl<V: Clone> TwoTierCache<V> {
    /// A cache with `capacity` entries per tier (the shared tier spreads
    /// its budget across `L2_STRIPES` stripes). `0` disables caching:
    /// every lookup misses silently and every store is a no-op (no
    /// telemetry either, so disabled runs count zero `fleet.cache.*`).
    pub fn new(capacity: usize) -> Self {
        let stripes = (0..L2_STRIPES)
            .map(|_| RwLock::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            stripes,
            capacity,
            stripe_capacity: capacity.div_ceil(L2_STRIPES),
        }
    }

    /// Whether the cache is enabled (capacity > 0).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of entries in the shared L2 tier (all stripes).
    pub fn shared_len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.read().expect("verdict cache poisoned").len())
            .sum()
    }

    /// Look `key` up: the caller's L1 first, then the key's L2 stripe
    /// (promoting a hit into L1). Emits
    /// `fleet.cache.{l1_hits,l2_hits,misses}`.
    pub fn lookup(&self, l1: &mut WorkerTier<V>, key: &VerdictKey) -> Option<V> {
        if !self.enabled() {
            return None;
        }
        if let Some(v) = l1.map.get(key) {
            divot_telemetry::inc("fleet.cache.l1_hits");
            return Some(v.clone());
        }
        let from_shared = self.stripes[stripe_of(key)]
            .read()
            .expect("verdict cache poisoned")
            .get(key)
            .cloned();
        match from_shared {
            Some(v) => {
                divot_telemetry::inc("fleet.cache.l2_hits");
                Self::insert_bounded(&mut l1.map, self.capacity, *key, v.clone());
                Some(v)
            }
            None => {
                divot_telemetry::inc("fleet.cache.misses");
                None
            }
        }
    }

    /// L2-only lookup without an L1 tier and without promotion — the
    /// reactor serves warm repeats inline off this before paying a
    /// worker-pool round trip. A hit counts `fleet.cache.l2_hits`; a
    /// miss counts nothing (the request proceeds to a worker whose
    /// [`lookup`](Self::lookup) accounts for it once).
    pub fn peek(&self, key: &VerdictKey) -> Option<V> {
        if !self.enabled() {
            return None;
        }
        let v = self.stripes[stripe_of(key)]
            .read()
            .expect("verdict cache poisoned")
            .get(key)
            .cloned();
        if v.is_some() {
            divot_telemetry::inc("fleet.cache.l2_hits");
        }
        v
    }

    /// Memoize `value` under `key` in both the caller's L1 and the
    /// key's L2 stripe.
    pub fn store(&self, l1: &mut WorkerTier<V>, key: VerdictKey, value: V) {
        if !self.enabled() {
            return;
        }
        Self::insert_bounded(&mut l1.map, self.capacity, key, value.clone());
        let mut stripe = self.stripes[stripe_of(&key)]
            .write()
            .expect("verdict cache poisoned");
        Self::insert_bounded(&mut stripe, self.stripe_capacity, key, value);
    }

    /// Insert with wholesale eviction: a full map is cleared rather than
    /// LRU-tracked (counted in `fleet.cache.evictions`).
    fn insert_bounded(map: &mut HashMap<VerdictKey, V>, capacity: usize, key: VerdictKey, v: V) {
        if map.len() >= capacity && !map.contains_key(&key) {
            map.clear();
            divot_telemetry::inc("fleet.cache.evictions");
        }
        map.insert(key, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(device: u32, generation: u64, nonce: u64) -> VerdictKey {
        VerdictKey {
            kind: VerdictKind::Verify,
            device,
            generation,
            nonce,
        }
    }

    #[test]
    fn miss_then_l1_hit() {
        let cache = TwoTierCache::new(16);
        let mut l1 = WorkerTier::new();
        assert_eq!(cache.lookup(&mut l1, &key(0, 0, 1)), None);
        cache.store(&mut l1, key(0, 0, 1), 7u64);
        assert_eq!(cache.lookup(&mut l1, &key(0, 0, 1)), Some(7));
        assert_eq!(l1.len(), 1);
        assert_eq!(cache.shared_len(), 1);
    }

    #[test]
    fn l2_hit_promotes_into_other_workers_l1() {
        let cache = TwoTierCache::new(16);
        let mut a = WorkerTier::new();
        let mut b = WorkerTier::new();
        cache.store(&mut a, key(1, 0, 5), "v");
        assert!(b.is_empty());
        assert_eq!(cache.lookup(&mut b, &key(1, 0, 5)), Some("v"));
        assert_eq!(b.len(), 1, "L2 hit must promote into L1");
    }

    #[test]
    fn generation_change_orphans_old_entries() {
        let cache = TwoTierCache::new(16);
        let mut l1 = WorkerTier::new();
        cache.store(&mut l1, key(2, 0, 9), true);
        // Same device and nonce under the next enrollment generation:
        // clean miss, the stale verdict can never be served.
        assert_eq!(cache.lookup(&mut l1, &key(2, 1, 9)), None);
        assert_eq!(cache.lookup(&mut l1, &key(2, 0, 9)), Some(true));
    }

    #[test]
    fn kinds_do_not_alias() {
        let cache = TwoTierCache::new(16);
        let mut l1 = WorkerTier::new();
        let verify = key(0, 0, 1);
        let scan = VerdictKey {
            kind: VerdictKind::Scan,
            ..verify
        };
        cache.store(&mut l1, verify, 1u8);
        assert_eq!(cache.lookup(&mut l1, &scan), None);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = TwoTierCache::new(0);
        let mut l1 = WorkerTier::new();
        assert!(!cache.enabled());
        cache.store(&mut l1, key(0, 0, 1), 1u8);
        assert_eq!(cache.lookup(&mut l1, &key(0, 0, 1)), None);
        assert!(l1.is_empty());
        assert_eq!(cache.shared_len(), 0);
    }

    #[test]
    fn peek_reads_l2_without_promoting() {
        let cache = TwoTierCache::new(16);
        let mut l1 = WorkerTier::new();
        assert_eq!(cache.peek(&key(4, 0, 1)), None);
        cache.store(&mut l1, key(4, 0, 1), 11u8);
        let mut other = WorkerTier::new();
        assert_eq!(cache.peek(&key(4, 0, 1)), Some(11));
        assert!(other.is_empty(), "peek must not need or touch an L1");
        // A normal lookup still promotes afterwards.
        assert_eq!(cache.lookup(&mut other, &key(4, 0, 1)), Some(11));
        assert_eq!(other.len(), 1);
    }

    #[test]
    fn stripes_isolate_devices() {
        // Devices landing on different stripes keep their entries even
        // when one stripe churns at capacity.
        let cache = TwoTierCache::new(L2_STRIPES * 2);
        let mut l1 = WorkerTier::new();
        for device in 0..64u32 {
            cache.store(&mut l1, key(device, 0, 1), device);
        }
        let survivors = (0..64u32)
            .filter(|&d| cache.peek(&key(d, 0, 1)).is_some())
            .count();
        assert!(
            survivors >= L2_STRIPES,
            "wholesale eviction must stay per-stripe (kept {survivors})"
        );
        assert_eq!(cache.shared_len(), survivors);
    }

    #[test]
    fn full_tier_evicts_wholesale() {
        let cache = TwoTierCache::new(2);
        let mut l1 = WorkerTier::new();
        cache.store(&mut l1, key(0, 0, 1), 1u8);
        cache.store(&mut l1, key(0, 0, 2), 2u8);
        cache.store(&mut l1, key(0, 0, 3), 3u8);
        assert_eq!(l1.len(), 1, "third insert clears the full tier first");
        assert_eq!(cache.lookup(&mut l1, &key(0, 0, 3)), Some(3));
        assert_eq!(cache.lookup(&mut l1, &key(0, 0, 1)), None);
    }
}
