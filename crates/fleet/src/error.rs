//! Typed rejections of the fleet service.
//!
//! Every way a request can fail is a distinct, wire-encodable variant:
//! backpressure sheds ([`FleetError::Overloaded`]) are first-class
//! responses, not dropped connections, so a loaded verifier degrades into
//! explicit `try again` answers instead of unbounded queueing or latency
//! collapse.

use std::fmt;

/// Why an [`FleetError::Overloaded`] shed happened — the admission
/// stage that rejected the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The service's bounded admission queue (or the reactor's
    /// per-connection parking lot) was full at submission.
    QueueFull,
    /// The reactor's round-robin fair-share admission could not place
    /// the request before its patience window expired — the service
    /// stayed saturated by other connections' traffic.
    FairShare,
}

impl ShedReason {
    /// Stable wire byte of this reason.
    pub fn code(self) -> u8 {
        match self {
            Self::QueueFull => 0,
            Self::FairShare => 1,
        }
    }

    /// Decode a wire byte back into the reason.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Protocol`] on unknown bytes.
    pub fn from_code(code: u8) -> Result<Self, FleetError> {
        match code {
            0 => Ok(Self::QueueFull),
            1 => Ok(Self::FairShare),
            other => Err(FleetError::Protocol(format!(
                "unknown shed reason {other}"
            ))),
        }
    }
}

/// Why the fleet service rejected a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The admission queue is full: the request was shed at submission.
    /// Clients should back off and retry.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The configured queue capacity.
        capacity: usize,
        /// Which admission stage shed the request.
        reason: ShedReason,
    },
    /// The request's deadline expired before a worker picked it up.
    DeadlineExceeded,
    /// The named device is not part of the simulated fleet or (for
    /// verify/scan) has no enrolled pairing.
    UnknownDevice(String),
    /// Every acquisition attempt hit a transient fault; the retry budget
    /// is exhausted.
    AcquisitionFailed {
        /// How many attempts were made.
        attempts: u32,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// A wire frame could not be decoded.
    Protocol(String),
    /// A transport-level I/O failure (TCP client side).
    Io(String),
    /// An intake scan arrived before any [`crate::Request::CohortEnroll`]
    /// learned a population model.
    NoCohortModel,
    /// A cohort enrollment's fingerprints could not support a population
    /// model (cohort too small, splintered into sub-populations, …) —
    /// the wrapped reason is the cohort crate's diagnostic.
    CohortRejected(String),
}

impl FleetError {
    /// Stable wire code of this variant (frame tag byte).
    pub fn code(&self) -> u8 {
        match self {
            Self::Overloaded { .. } => 1,
            Self::DeadlineExceeded => 2,
            Self::UnknownDevice(_) => 3,
            Self::AcquisitionFailed { .. } => 4,
            Self::ShuttingDown => 5,
            Self::Protocol(_) => 6,
            Self::Io(_) => 7,
            Self::NoCohortModel => 8,
            Self::CohortRejected(_) => 9,
        }
    }

    /// Whether a client may transparently retry this error later
    /// (backpressure and transient-fault rejections).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Self::Overloaded { .. } | Self::AcquisitionFailed { .. } | Self::DeadlineExceeded
        )
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded {
                depth,
                capacity,
                reason,
            } => match reason {
                ShedReason::QueueFull => {
                    write!(f, "shed: admission queue full ({depth}/{capacity})")
                }
                ShedReason::FairShare => write!(
                    f,
                    "shed: fair-share admission window expired ({depth}/{capacity})"
                ),
            },
            Self::DeadlineExceeded => write!(f, "deadline expired before service"),
            Self::UnknownDevice(d) => write!(f, "unknown device `{d}`"),
            Self::AcquisitionFailed { attempts } => {
                write!(f, "acquisition failed after {attempts} attempts")
            }
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
            Self::Io(msg) => write!(f, "i/o error: {msg}"),
            Self::NoCohortModel => {
                write!(f, "no population model learned yet (run a cohort enroll first)")
            }
            Self::CohortRejected(msg) => write!(f, "cohort rejected: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct() {
        let all = [
            FleetError::Overloaded {
                depth: 8,
                capacity: 8,
                reason: ShedReason::QueueFull,
            },
            FleetError::DeadlineExceeded,
            FleetError::UnknownDevice("x".into()),
            FleetError::AcquisitionFailed { attempts: 3 },
            FleetError::ShuttingDown,
            FleetError::Protocol("p".into()),
            FleetError::Io("io".into()),
            FleetError::NoCohortModel,
            FleetError::CohortRejected("splintered".into()),
        ];
        let mut codes: Vec<u8> = all.iter().map(FleetError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn retryable_classification() {
        assert!(FleetError::Overloaded {
            depth: 1,
            capacity: 1,
            reason: ShedReason::FairShare,
        }
        .is_retryable());
        assert!(FleetError::AcquisitionFailed { attempts: 3 }.is_retryable());
        assert!(FleetError::DeadlineExceeded.is_retryable());
        assert!(!FleetError::UnknownDevice("d".into()).is_retryable());
        assert!(!FleetError::ShuttingDown.is_retryable());
        assert!(!FleetError::NoCohortModel.is_retryable());
        assert!(!FleetError::CohortRejected("r".into()).is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = FleetError::Overloaded {
            depth: 7,
            capacity: 8,
            reason: ShedReason::QueueFull,
        };
        assert!(format!("{e}").contains("7/8"));
        let fair = FleetError::Overloaded {
            depth: 7,
            capacity: 8,
            reason: ShedReason::FairShare,
        };
        assert!(format!("{fair}").contains("fair-share"));
        assert!(format!("{}", FleetError::UnknownDevice("bus-3".into())).contains("bus-3"));
    }

    #[test]
    fn shed_reasons_round_trip_their_codes() {
        for reason in [ShedReason::QueueFull, ShedReason::FairShare] {
            assert_eq!(ShedReason::from_code(reason.code()).unwrap(), reason);
        }
        assert!(matches!(
            ShedReason::from_code(99),
            Err(FleetError::Protocol(_))
        ));
    }
}
