//! Fleet-scale attestation service for DIVOT-protected buses.
//!
//! The paper's §IV scaling argument — one shared iTDR datapath
//! multiplexed across many protected lanes — is modeled inside one chip
//! by [`DivotHub`](divot_core::hub::DivotHub). This crate lifts that
//! model to the deployment the PUF-fleet literature envisions (a central
//! verifier attesting many field devices): a std-only concurrent service
//! that owns a population of enrolled buses and serves `Enroll`,
//! `Verify`, `MonitorScan`, and `RegistrySnapshot` requests from many
//! clients at once. The golden-free intake path (`CohortEnroll` /
//! `IntakeScan`, backed by [`divot_cohort`]) attests boards against a
//! population model learned from a cohort — no per-device reference
//! fingerprints required.
//!
//! The moving parts, one module each:
//!
//! - [`store`] — [`FleetStore`]: enrolled pairings
//!   sharded by device id, one `RwLock` per shard, persisted as
//!   [`FingerprintRegistry`](divot_core::registry::FingerprintRegistry)
//!   EPROM bank images with atomic-rename durability.
//! - [`sim`] — [`SimulatedFleet`]: the physics
//!   behind the service. Every device is a fabricated Tx-line; every
//!   acquisition derives its RNG stream from `(device, nonce)`, so the
//!   service's answers are a pure function of the request — the property
//!   every concurrency test in this crate leans on.
//! - [`service`] — [`FleetService`]: a worker
//!   pool behind a *bounded* admission queue. Overload sheds requests
//!   with a typed [`FleetError::Overloaded`](error::FleetError) instead
//!   of buffering without bound; expired deadlines are rejected at
//!   dequeue; transient acquisition faults retry with deterministic
//!   jittered backoff.
//! - [`cache`] — [`TwoTierCache`](cache::TwoTierCache): verdict
//!   memoization behind the verify fast path. L1 is per-worker and
//!   lock-free, L2 is shared; keys embed the store's enrollment
//!   generation so re-enrollment invalidates without a cache walk.
//! - [`wire`] — a length-prefixed binary protocol (v1 plain, v2
//!   pipelined/enveloped) served over `std::net::TcpListener`, plus the
//!   matching blocking clients ([`TcpFleetClient`],
//!   [`PipelinedFleetClient`]). The in-process [`FleetClient`] and the
//!   TCP path share one request/response vocabulary.
//! - [`reactor`] — the event-driven server behind
//!   [`FleetTcpServer::spawn`]: a single poll-based readiness loop
//!   (via `divot-polling`) multiplexing 10k+ nonblocking connections
//!   with request pipelining, round-robin fair admission,
//!   cache-inline serving, device-coalesced batch submission, and
//!   streaming `MonitorScan` subscriptions. The thread-per-connection
//!   server survives as
//!   [`FleetTcpServer::spawn_threaded`] — the
//!   byte-equivalence reference.
//!
//! # Determinism contract
//!
//! Verdicts depend only on `(fleet seed, device, nonce)`: worker count,
//! queue pressure, request interleaving, and telemetry on/off cannot
//! change a single bit of any similarity score
//! (`tests/determinism.rs`). Scheduling decides *when* a request is
//! answered — or whether it is shed — never *what* the answer is.
//!
//! # Telemetry
//!
//! With a [`divot_telemetry`] default installed the service exports
//! `fleet.queue.depth` (gauge), `fleet.request.latency` plus per-kind
//! latency histograms, `fleet.verify.accepts` / `fleet.verify.rejects`,
//! `fleet.shed`, `fleet.deadline_misses`, `fleet.retries`, and the
//! verdict-cache counters `fleet.cache.l1_hits` / `fleet.cache.l2_hits`
//! / `fleet.cache.misses` / `fleet.cache.evictions`. The reactor adds
//! `fleet.reactor.wakeups`, `fleet.reactor.frames`,
//! `fleet.reactor.frames_per_wakeup`, `fleet.reactor.pipeline_depth`,
//! `fleet.reactor.batch_width`, `fleet.reactor.inline_hits`,
//! `fleet.reactor.inline_stats`, `fleet.reactor.coalesced`,
//! `fleet.reactor.sheds_fair`, `fleet.reactor.pushes`,
//! `fleet.reactor.push_skips`, and the gauges `fleet.reactor.conns` /
//! `fleet.reactor.subs`. `fleet.queue.wait_ns` and the per-shard
//! `fleet.store.shard.NNN.lock_hold_ns` histograms time the admission
//! queue and store-lock critical sections. The golden-free intake path
//! adds `fleet.cohort.model.rebuilds`, `fleet.cohort.scans`, and the
//! verdict breakdown `fleet.cohort.verdict.genuine` /
//! `.counterfeit` / `.tampered` / `.inconclusive`.
//!
//! # Observability plane
//!
//! The whole stack is observable without being influenceable: metrics
//! ([`divot_telemetry`] counters/gauges/histograms), deterministic
//! per-request traces
//! ([`divot_telemetry::TraceCtx`], sampled by a pure hash of the
//! request), and wire-exposed stats ([`Request::Stats`] →
//! [`FleetStats`], plus streaming stats subscriptions) all read state;
//! none feed back into scheduling or verdicts. See the
//! `ARCHITECTURE.md` "Observability plane" section for the trace
//! lifecycle and stats wire flow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod reactor;
pub mod service;
pub mod sim;
pub mod store;
pub mod wire;

pub use error::{FleetError, ShedReason};
pub use reactor::ReactorConfig;
pub use service::{
    Completion, CompletionQueue, FleetClient, FleetConfig, FleetService, FleetStats, IntakeReport,
    Request, Response, RetryPolicy,
};
pub use sim::{subscription_nonce, Anomaly, FleetSimConfig, SimulatedFleet};
pub use store::FleetStore;
pub use wire::{FleetTcpServer, PipelinedFleetClient, TcpFleetClient, WireEvent, WireRequest};
