//! Property pin for memoized fabrication: for *arbitrary*
//! `(fleet seed, device count, device, nonce)` the warm fast path —
//! shared back-reflection, shared ROM, shared level schedule — must
//! produce an acquisition bitwise-identical to a channel that computes
//! everything from scratch.
//!
//! This is the cache-correctness half of the fleet determinism
//! contract: memoization may only ever skip recomputing values that are
//! pure functions of the device, never change them.

use divot_core::itdr::AcqMode;
use divot_fleet::{FleetSimConfig, SimulatedFleet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn memoized_acquisition_is_bitwise_identical_to_fresh(
        seed in any::<u64>(),
        devices in 1usize..5,
        device in 0usize..5,
        nonce in any::<u64>(),
        analytic in any::<bool>(),
    ) {
        let device = device % devices;
        let mode = if analytic { AcqMode::Analytic } else { AcqMode::Trial };
        let fleet = SimulatedFleet::new(
            FleetSimConfig::fast(devices, seed).with_acq_mode(mode),
        );
        let name = SimulatedFleet::device_name(device);
        // Warm path first (it also populates the memoized state), then
        // the reference path, then the warm path again: all three must
        // carry the exact same bits.
        let warm = fleet.acquire(&name, nonce).unwrap();
        let fresh = fleet.acquire_uncached(&name, nonce).unwrap();
        let warm_again = fleet.acquire(&name, nonce).unwrap();
        for (a, b) in warm.samples().iter().zip(fresh.samples()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in warm.samples().iter().zip(warm_again.samples()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn enrollment_is_identical_across_fleet_instances(
        seed in any::<u64>(),
        nonce in any::<u64>(),
    ) {
        // Two independently constructed fleets (each with its own
        // lazily-warmed state) must enroll the identical pairing: the
        // memoized values are functions of the configuration alone.
        let a = SimulatedFleet::new(FleetSimConfig::fast(2, seed));
        let b = SimulatedFleet::new(FleetSimConfig::fast(2, seed));
        // Warm fleet `b` through a different code path first.
        let _ = b.acquire("bus-001", nonce);
        let pa = a.enroll("bus-001", nonce).unwrap();
        let pb = b.enroll("bus-001", nonce).unwrap();
        for (x, y) in pa.master.iip().samples().iter().zip(pb.master.iip().samples()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in pa.slave.iip().samples().iter().zip(pb.slave.iip().samples()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
