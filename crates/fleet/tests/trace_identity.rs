//! Tracing must be observe-only: installing a tracer (even at sample
//! rate 1, tracing every request) cannot change a single bit of any
//! verdict. Two identically-seeded services run the same pipelined
//! verify burst — one before the process tracer exists, one after —
//! and their encoded outcomes must match bytewise.

use divot_fleet::wire::encode_response;
use divot_fleet::{
    FleetConfig, FleetService, FleetSimConfig, FleetTcpServer, PipelinedFleetClient, Request,
    SimulatedFleet, WireEvent,
};
use divot_telemetry::{install_tracer, tracer, EventSink, Tracer};

const SEED: u64 = 424242;
const DEVICES: usize = 3;
const NONCES: std::ops::Range<u64> = 100..130;

/// Run one enroll + pipelined-verify burst against a fresh service and
/// return every reply encoded, in id order.
fn run_burst() -> Vec<Vec<u8>> {
    let svc = FleetService::start(
        FleetConfig::default().with_workers(2),
        SimulatedFleet::new(FleetSimConfig::fast(DEVICES, SEED)),
    );
    let server = FleetTcpServer::spawn(svc.client(), "127.0.0.1:0").expect("bind");
    let mut client = PipelinedFleetClient::connect(server.local_addr()).expect("connect");

    let devices: Vec<(String, u64)> = (0..DEVICES)
        .map(|i| (SimulatedFleet::device_name(i), 1))
        .collect();
    let batch: Vec<(Request, Option<std::time::Duration>)> = std::iter::once((
        Request::EnrollBatch {
            devices: devices.clone(),
        },
        None,
    ))
    .collect();
    let ids = client.send_batch(&batch).expect("enroll");
    let mut outcomes = std::collections::BTreeMap::new();
    wait_for(&mut client, &ids, &mut outcomes);

    let verifies: Vec<(Request, Option<std::time::Duration>)> = NONCES
        .flat_map(|nonce| {
            devices.iter().map(move |(d, _)| {
                (
                    Request::Verify {
                        device: d.clone(),
                        nonce,
                    },
                    None,
                )
            })
        })
        .collect();
    let ids = client.send_batch(&verifies).expect("verify burst");
    wait_for(&mut client, &ids, &mut outcomes);
    drop(server);
    drop(svc);
    outcomes.into_values().collect()
}

fn wait_for(
    client: &mut PipelinedFleetClient,
    ids: &[u64],
    outcomes: &mut std::collections::BTreeMap<u64, Vec<u8>>,
) {
    let want: std::collections::BTreeSet<u64> = ids.iter().copied().collect();
    let mut seen = 0usize;
    while seen < want.len() {
        if let WireEvent::Reply { id, outcome } = client.recv_event().expect("event") {
            if want.contains(&id) {
                outcomes.insert(id, encode_response(&outcome));
                seen += 1;
            }
        }
    }
}

#[test]
fn verdict_bits_are_identical_with_and_without_tracing() {
    let before = run_burst();

    // Install the process tracer at sample 1: every request traced,
    // the worst case for any accidental influence.
    let sink = EventSink::to_writer(Box::new(std::io::sink()));
    let _ = install_tracer(Tracer::with_sink(sink, 1));
    let t = tracer().expect("tracer installed");

    let after = run_burst();
    assert!(
        t.emitted() > 0,
        "tracer must actually emit spans during the traced burst"
    );
    assert_eq!(before.len(), after.len());
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        assert_eq!(b, a, "reply {i} diverged under tracing");
    }
}
