//! End-to-end fleet smoke over loopback TCP (the same workload the CI
//! fleet-smoke step runs): enroll 8 buses, fire 64 concurrent verifies
//! from independent TCP connections, and require zero sheds and an
//! all-accept outcome.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use divot_fleet::{
    FleetConfig, FleetError, FleetService, FleetSimConfig, FleetTcpServer, Request, Response,
    SimulatedFleet, TcpFleetClient,
};

const SEED: u64 = 44;
const BUSES: usize = 8;

fn start_fleet() -> (FleetService, FleetTcpServer) {
    let svc = FleetService::start(
        FleetConfig::default().with_workers(4),
        SimulatedFleet::new(FleetSimConfig::fast(BUSES, SEED)),
    );
    let server = FleetTcpServer::spawn(svc.client(), "127.0.0.1:0").expect("bind loopback");
    (svc, server)
}

#[test]
fn sixty_four_concurrent_tcp_verifies_all_accept_with_zero_sheds() {
    let (svc, server) = start_fleet();
    let addr = server.local_addr();

    // Enroll the whole fleet over the wire.
    let mut client = TcpFleetClient::connect(addr).expect("connect");
    for i in 0..BUSES {
        let resp = client
            .call(&Request::Enroll {
                device: SimulatedFleet::device_name(i),
                nonce: 1,
            })
            .expect("enroll");
        assert!(matches!(resp, Response::Enrolled { .. }), "{resp:?}");
    }

    // 64 concurrent verifies, each on its own TCP connection.
    let sheds = AtomicUsize::new(0);
    let accepts = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for k in 0..64usize {
            let (sheds, accepts) = (&sheds, &accepts);
            scope.spawn(move || {
                let mut c = TcpFleetClient::connect(addr).expect("connect");
                match c.call(&Request::Verify {
                    device: SimulatedFleet::device_name(k % BUSES),
                    nonce: 1000 + k as u64,
                }) {
                    Ok(Response::Verdict { accepted, .. }) => {
                        if accepted {
                            accepts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(FleetError::Overloaded { .. }) => {
                        sheds.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            });
        }
    });
    assert_eq!(sheds.load(Ordering::Relaxed), 0, "default queue must absorb 64");
    assert_eq!(accepts.load(Ordering::Relaxed), 64, "genuine fleet must all-accept");

    // Registry snapshot sees every enrolled device.
    match client.call(&Request::RegistrySnapshot).expect("snapshot") {
        Response::Snapshot { devices } => {
            assert_eq!(devices.len(), BUSES);
            let names: Vec<&str> = devices.iter().map(|(n, _)| n.as_str()).collect();
            assert!(names.contains(&"bus-000") && names.contains(&"bus-007"));
        }
        other => panic!("unexpected {other:?}"),
    }
    drop(server);
    drop(svc);
}

#[test]
fn tcp_errors_cross_the_wire_typed() {
    // Single worker so the queue can be held busy deterministically.
    let svc = FleetService::start(
        FleetConfig::default().with_workers(1),
        SimulatedFleet::new(FleetSimConfig::fast(2, SEED)),
    );
    let in_proc = svc.client();
    let server = FleetTcpServer::spawn(svc.client(), "127.0.0.1:0").expect("bind loopback");
    let mut client = TcpFleetClient::connect(server.local_addr()).expect("connect");
    client
        .call(&Request::Enroll {
            device: "bus-000".into(),
            nonce: 1,
        })
        .expect("enroll");

    // Unknown device comes back as the typed error, not a dead socket.
    let err = client
        .call(&Request::Verify {
            device: "bus-999".into(),
            nonce: 5,
        })
        .expect_err("unknown device must fail");
    assert!(matches!(err, FleetError::UnknownDevice(ref d) if d == "bus-999"), "{err:?}");

    // Hold the lone worker busy with a stream of in-process verifies,
    // then send a 1 ms deadline over the wire: it queues behind work
    // that takes longer than that, so it must come back
    // `DeadlineExceeded` — and the connection must stay usable.
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let (stop, in_proc) = (&stop, in_proc.clone());
            scope.spawn(move || {
                let mut nonce = 10_000 * (t + 1);
                while !stop.load(Ordering::Relaxed) {
                    let _ = in_proc.call(Request::Verify {
                        device: "bus-000".into(),
                        nonce,
                    });
                    nonce += 1;
                }
            });
        }
        // Wait until at least one request is actually queued (one in
        // service + one waiting) before submitting the doomed request.
        while in_proc.queue_depth() == 0 {
            std::thread::yield_now();
        }
        let err = client
            .call_with_deadline(
                &Request::Verify {
                    device: "bus-000".into(),
                    nonce: 6,
                },
                Duration::from_millis(1),
            )
            .expect_err("1 ms deadline behind queued work must miss");
        assert!(matches!(err, FleetError::DeadlineExceeded), "{err:?}");
        stop.store(true, Ordering::Relaxed);
    });

    match client.call(&Request::RegistrySnapshot).expect("socket survives") {
        Response::Snapshot { devices } => assert_eq!(devices.len(), 1),
        other => panic!("unexpected {other:?}"),
    }
    drop(server);
    drop(svc);
}

#[test]
fn tiny_queue_sheds_under_burst_and_recovers() {
    // One slow-ish worker, a 2-slot queue, and a 64-request burst: the
    // service must refuse (typed) rather than buffer unboundedly, and
    // every non-shed answer must still be a correct verdict.
    let svc = FleetService::start(
        FleetConfig::default().with_workers(1).with_queue_capacity(2),
        SimulatedFleet::new(FleetSimConfig::fast(2, SEED)),
    );
    let client = svc.client();
    client
        .call(Request::Enroll {
            device: "bus-000".into(),
            nonce: 1,
        })
        .expect("enroll");

    let sheds = AtomicUsize::new(0);
    let served = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for k in 0..64u64 {
            let (sheds, served, client) = (&sheds, &served, client.clone());
            scope.spawn(move || match client.call(Request::Verify {
                device: "bus-000".into(),
                nonce: 2000 + k,
            }) {
                Ok(Response::Verdict { accepted, .. }) => {
                    assert!(accepted);
                    served.fetch_add(1, Ordering::Relaxed);
                }
                Err(FleetError::Overloaded { capacity, .. }) => {
                    assert_eq!(capacity, 2);
                    sheds.fetch_add(1, Ordering::Relaxed);
                }
                other => panic!("unexpected {other:?}"),
            });
        }
    });
    assert!(sheds.load(Ordering::Relaxed) > 0, "burst must shed");
    assert!(served.load(Ordering::Relaxed) > 0, "some must be served");

    // After the burst drains, the service accepts work again.
    match client
        .call(Request::Verify {
            device: "bus-000".into(),
            nonce: 9999,
        })
        .expect("recovered")
    {
        Response::Verdict { accepted, .. } => assert!(accepted),
        other => panic!("unexpected {other:?}"),
    }
}
