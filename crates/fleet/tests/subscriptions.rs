//! Streaming MonitorScan subscriptions over the reactor transport.
//!
//! The push path must be *indistinguishable* from polling: frame `k` of
//! a subscription carries bitwise the outcome an explicit `MonitorScan`
//! under `subscription_nonce(base, k)` returns. Lifecycle: ack, frames
//! in sequence order, end marker — and unsubscribe stops the stream.

use std::time::Duration;

use divot_fleet::wire::encode_response;
use divot_fleet::{
    subscription_nonce, FleetConfig, FleetError, FleetService, FleetSimConfig, FleetTcpServer,
    PipelinedFleetClient, Request, SimulatedFleet, WireEvent,
};

const SEED: u64 = 91;

fn start_fleet() -> (FleetService, FleetTcpServer) {
    let svc = FleetService::start(
        FleetConfig::default().with_workers(2),
        SimulatedFleet::new(FleetSimConfig::fast(2, SEED)),
    );
    let server = FleetTcpServer::spawn(svc.client(), "127.0.0.1:0").expect("bind");
    (svc, server)
}

#[test]
fn bounded_subscription_streams_exactly_its_frames_bitwise() {
    let (svc, server) = start_fleet();
    let device = SimulatedFleet::device_name(0);
    let in_proc = svc.client();
    in_proc
        .call(Request::Enroll {
            device: device.clone(),
            nonce: 1,
        })
        .expect("enroll");

    let base_nonce = 0xFEED;
    let mut client = PipelinedFleetClient::connect(server.local_addr()).expect("connect");
    let sub = client
        .subscribe(&device, base_nonce, Duration::from_millis(2), 3)
        .expect("subscribe");

    match client.recv_event().expect("ack") {
        WireEvent::SubAck { id, interval } => {
            assert_eq!(id, sub);
            assert_eq!(interval, Duration::from_millis(2));
        }
        other => panic!("expected ack, got {other:?}"),
    }
    for k in 0..3u64 {
        match client.recv_event().expect("frame") {
            WireEvent::ScanFrame { id, seq, outcome } => {
                assert_eq!(id, sub);
                assert_eq!(seq, k, "frames must arrive in sequence order");
                // The pushed frame is bitwise the explicit scan under
                // the derived nonce.
                let reference = in_proc.call(Request::MonitorScan {
                    device: device.clone(),
                    nonce: subscription_nonce(base_nonce, k),
                });
                assert_eq!(
                    encode_response(&outcome),
                    encode_response(&reference),
                    "pushed frame {k} diverged from explicit scan"
                );
            }
            other => panic!("expected frame {k}, got {other:?}"),
        }
    }
    match client.recv_event().expect("end") {
        WireEvent::SubEnd { id, frames } => {
            assert_eq!(id, sub);
            assert_eq!(frames, 3);
        }
        other => panic!("expected end, got {other:?}"),
    }
    drop(server);
    drop(svc);
}

#[test]
fn unsubscribe_stops_an_unbounded_stream() {
    let (svc, server) = start_fleet();
    let device = SimulatedFleet::device_name(1);
    svc.client()
        .call(Request::Enroll {
            device: device.clone(),
            nonce: 1,
        })
        .expect("enroll");

    let mut client = PipelinedFleetClient::connect(server.local_addr()).expect("connect");
    let sub = client
        .subscribe(&device, 7, Duration::from_millis(1), 0)
        .expect("subscribe");
    match client.recv_event().expect("ack") {
        WireEvent::SubAck { id, .. } => assert_eq!(id, sub),
        other => panic!("expected ack, got {other:?}"),
    }
    // Let a couple of frames through, then cancel.
    let mut seen = 0u64;
    while seen < 2 {
        match client.recv_event().expect("frame") {
            WireEvent::ScanFrame { id, seq, .. } => {
                assert_eq!(id, sub);
                assert_eq!(seq, seen);
                seen += 1;
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }
    client.unsubscribe(sub).expect("unsubscribe");
    // Frames already pushed may still be in flight; the end marker must
    // arrive, and nothing after it.
    let total = loop {
        match client.recv_event().expect("event") {
            WireEvent::ScanFrame { id, seq, .. } => {
                assert_eq!(id, sub);
                assert_eq!(seq, seen);
                seen += 1;
            }
            WireEvent::SubEnd { id, frames } => {
                assert_eq!(id, sub);
                break frames;
            }
            other => panic!("unexpected {other:?}"),
        }
    };
    assert!(total >= 2, "at least the two observed frames were pushed");
    client
        .set_recv_timeout(Some(Duration::from_millis(50)))
        .expect("timeout");
    let after = client.recv_event();
    assert!(
        matches!(after, Err(FleetError::Io(_))),
        "stream must be silent after the end marker, got {after:?}"
    );
    drop(server);
    drop(svc);
}

#[test]
fn subscribing_to_an_unknown_device_fails_typed() {
    let (svc, server) = start_fleet();
    let mut client = PipelinedFleetClient::connect(server.local_addr()).expect("connect");
    let sub = client
        .subscribe("bus-404", 1, Duration::from_millis(5), 1)
        .expect("subscribe");
    match client.recv_event().expect("reply") {
        WireEvent::Reply { id, outcome } => {
            assert_eq!(id, sub);
            assert!(
                matches!(*outcome, Err(FleetError::UnknownDevice(ref d)) if d == "bus-404"),
                "{outcome:?}"
            );
        }
        other => panic!("expected typed refusal, got {other:?}"),
    }
    drop(server);
    drop(svc);
}
