//! Deterministic-concurrency pins for the fleet service: verify
//! verdicts for a fixed seed are bitwise-identical across serial
//! (1-worker), 2-worker, and 8-worker configurations, identical with
//! telemetry on and off, and identical with the verdict cache enabled
//! and disabled. Analytic and Trial acquisition fleets must agree on
//! every *decision* (their similarity bits differ by design: the two
//! modes draw from disjoint RNG domains).
//!
//! This is the service-level extension of the repo-wide determinism
//! contract: scheduling, observation, and memoization decide *when* an
//! answer arrives (and how expensively), never *what* it is.

use divot_core::itdr::AcqMode;
use divot_fleet::{FleetConfig, FleetService, FleetSimConfig, Request, Response, SimulatedFleet};

const SEED: u64 = 2020;
const DEVICES: usize = 6;

/// Run the canonical workload — enroll every device, then a fixed list
/// of verifies and scans, each issued twice (the repeat exercises the
/// verdict cache when it is enabled) — and return every answer reduced
/// to exact bits.
fn run_workload(workers: usize) -> Vec<(String, bool, u64)> {
    run_workload_with(
        FleetConfig::default().with_workers(workers),
        FleetSimConfig::fast(DEVICES, SEED),
    )
}

/// [`run_workload`] under explicit service and fleet configurations.
fn run_workload_with(config: FleetConfig, sim: FleetSimConfig) -> Vec<(String, bool, u64)> {
    let svc = FleetService::start(config, SimulatedFleet::new(sim));
    let client = svc.client();
    for i in 0..DEVICES {
        client
            .call(Request::Enroll {
                device: SimulatedFleet::device_name(i),
                nonce: 11,
            })
            .unwrap();
    }
    // Fan the fixed request list across as many client threads as the
    // service has workers, so parallel configurations are exercised with
    // genuinely concurrent traffic; results are collected in request
    // order regardless.
    let requests: Vec<(String, u64)> = (0..4 * DEVICES)
        .map(|k| (SimulatedFleet::device_name(k % DEVICES), 500 + k as u64))
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|(device, nonce)| {
                let client = client.clone();
                let (device, nonce) = (device.clone(), *nonce);
                scope.spawn(move || {
                    let call_verify = || match client
                        .call(Request::Verify {
                            device: device.clone(),
                            nonce,
                        })
                        .unwrap()
                    {
                        Response::Verdict {
                            accepted,
                            similarity,
                            ..
                        } => (device.clone(), accepted, similarity.to_bits()),
                        other => panic!("unexpected {other:?}"),
                    };
                    let verdict = call_verify();
                    // Repeat of the identical request: must answer the
                    // same bits whether it recomputes or hits a cache.
                    assert_eq!(call_verify(), verdict, "repeat verify must be stable");
                    let scan_bits = match client
                        .call(Request::MonitorScan { device, nonce })
                        .unwrap()
                    {
                        Response::Scan {
                            detected,
                            max_error,
                            ..
                        } => {
                            assert!(!detected, "clean fleet must scan clean");
                            max_error.to_bits()
                        }
                        other => panic!("unexpected {other:?}"),
                    };
                    (verdict.0, verdict.1, verdict.2 ^ scan_bits.rotate_left(1))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn verdicts_are_bitwise_identical_across_worker_counts() {
    let serial = run_workload(1);
    assert!(
        serial.iter().all(|(_, accepted, _)| *accepted),
        "genuine fleet must verify"
    );
    let two = run_workload(2);
    let eight = run_workload(8);
    assert_eq!(serial, two, "2 workers must match serial bitwise");
    assert_eq!(serial, eight, "8 workers must match serial bitwise");
}

#[test]
fn verdicts_are_bitwise_identical_cached_and_uncached() {
    // Capacity 0 disables both verdict tiers: every repeat request
    // recomputes from scratch. The memoized run must not differ by a bit.
    let sim = || FleetSimConfig::fast(DEVICES, SEED);
    let uncached = run_workload_with(
        FleetConfig::default()
            .with_workers(4)
            .with_verdict_cache_capacity(0),
        sim(),
    );
    let cached = run_workload_with(FleetConfig::default().with_workers(4), sim());
    assert_eq!(uncached, cached, "memoization must be invisible in the bits");
}

#[test]
fn analytic_and_trial_fleets_agree_on_every_decision() {
    // The two acquisition modes deliberately draw from disjoint RNG
    // domains, so similarity *bits* differ; the accept decisions (and
    // clean-scan outcomes, asserted inside the workload) must agree on
    // every request of the canonical workload.
    let decisions = |mode| {
        run_workload_with(
            FleetConfig::default().with_workers(2),
            FleetSimConfig::fast(DEVICES, SEED).with_acq_mode(mode),
        )
        .into_iter()
        .map(|(device, accepted, _bits)| (device, accepted))
        .collect::<Vec<_>>()
    };
    let analytic = decisions(AcqMode::Analytic);
    let trial = decisions(AcqMode::Trial);
    assert!(analytic.iter().all(|(_, a)| *a), "genuine fleet must verify");
    assert_eq!(analytic, trial, "modes must agree on decisions");
}

#[test]
fn verdicts_are_bitwise_identical_with_telemetry_on_and_off() {
    // "Off" pass first: nothing installed yet, every instrument is a
    // no-op.
    let off = run_workload(4);
    // Install the process-wide telemetry (first install wins; if another
    // test got there first that's still an "on" state).
    let _ = divot_telemetry::install(divot_telemetry::Telemetry::new());
    let on = run_workload(4);
    assert_eq!(off, on, "telemetry must be observe-only");
    // And the instrumentation did fire on the second pass.
    let t = divot_telemetry::global().expect("installed above");
    assert!(t.registry().counter("fleet.verify.accepts").get() > 0);
}

#[test]
fn warm_restart_from_persisted_banks_verifies_identically() {
    let dir = std::env::temp_dir().join(format!("divot-fleet-warm-{}", std::process::id()));
    let first = FleetService::start(
        FleetConfig::default().with_workers(2),
        SimulatedFleet::new(FleetSimConfig::fast(3, SEED)),
    );
    let client = first.client();
    for i in 0..3 {
        client
            .call(Request::Enroll {
                device: SimulatedFleet::device_name(i),
                nonce: 11,
            })
            .unwrap();
    }
    let verdict_before = client
        .call(Request::Verify {
            device: "bus-001".into(),
            nonce: 777,
        })
        .unwrap();
    first.persist(&dir).unwrap();
    drop(first);

    // Cold process restart: reload the shard banks, re-attach the same
    // physical fleet, no re-enrollment.
    let store = divot_fleet::FleetStore::load(&dir, FleetConfig::default().shards).unwrap();
    let second = FleetService::start_with_store(
        FleetConfig::default().with_workers(2),
        SimulatedFleet::new(FleetSimConfig::fast(3, SEED)),
        store,
    );
    let verdict_after = second
        .client()
        .call(Request::Verify {
            device: "bus-001".into(),
            nonce: 777,
        })
        .unwrap();
    match (&verdict_before, &verdict_after) {
        (
            Response::Verdict {
                accepted: a1,
                similarity: s1,
                ..
            },
            Response::Verdict {
                accepted: a2,
                similarity: s2,
                ..
            },
        ) => {
            assert!(*a1 && *a2, "warm restart must keep verifying");
            // The fingerprint crossed the EPROM codec (16-bit fixed
            // point), so the score matches within quantization, and the
            // decision matches exactly.
            assert!((s1 - s2).abs() < 1e-3, "{s1} vs {s2}");
        }
        other => panic!("unexpected {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
