//! Warm-path regression pin: once a device has been served, further
//! fleet traffic on it must not touch the scattering engine — and an
//! exact repeat of a request must not even run the instrument.
//!
//! This test owns the process-wide telemetry (own integration-test
//! binary, so no other test's counters bleed in) and asserts on counter
//! *deltas* around each phase:
//!
//! - enrollment and the first verify may pay engine runs (cold
//!   fabrication of the device's back-reflection);
//! - a repeat verify of the same `(device, nonce)` is a verdict-cache
//!   hit: zero engine runs, zero iTDR measurements;
//! - a *fresh* nonce on the same device must measure (the physics is
//!   re-sampled) but still performs zero engine runs and zero
//!   ROM/schedule rebuilds — the memoized fabrication serves it.

use divot_fleet::{FleetConfig, FleetService, FleetSimConfig, Request, Response, SimulatedFleet};

fn counter(name: &str) -> u64 {
    divot_telemetry::global()
        .expect("telemetry installed by the test")
        .registry()
        .counter(name)
        .get()
}

#[test]
fn warm_verifies_never_rerun_the_engine() {
    divot_telemetry::install(divot_telemetry::Telemetry::new())
        .expect("first telemetry install in this process");
    let svc = FleetService::start(
        FleetConfig::default().with_workers(2),
        SimulatedFleet::new(FleetSimConfig::fast(2, 42)),
    );
    let client = svc.client();
    for i in 0..2 {
        client
            .call(Request::Enroll {
                device: SimulatedFleet::device_name(i),
                nonce: 1,
            })
            .unwrap();
    }
    let verify = |nonce| match client
        .call(Request::Verify {
            device: "bus-000".into(),
            nonce,
        })
        .unwrap()
    {
        Response::Verdict { accepted, .. } => assert!(accepted, "genuine device"),
        other => panic!("unexpected {other:?}"),
    };
    // Cold serve: the first verify of the device after enrollment.
    verify(100);

    // Every fabrication product the fleet memoizes, by its counter.
    let fabrication = [
        "txline.cache.engine_runs",
        "apc.rom_builds",
        "frontend.level_schedule_builds",
    ];
    let engine_after_cold: Vec<u64> = fabrication.iter().map(|n| counter(n)).collect();
    let measurements_after_cold = counter("itdr.measurements");
    assert!(engine_after_cold[0] > 0, "cold path does run the engine");
    assert!(measurements_after_cold > 0, "cold path does measure");

    // Exact repeat: a verdict-cache hit must not even touch the iTDR.
    for _ in 0..5 {
        verify(100);
    }
    assert_eq!(
        fabrication.iter().map(|n| counter(n)).collect::<Vec<_>>(),
        engine_after_cold,
        "repeat verify must not refabricate anything"
    );
    assert_eq!(
        counter("itdr.measurements"),
        measurements_after_cold,
        "repeat verify must not measure"
    );
    assert!(counter("fleet.cache.l1_hits") + counter("fleet.cache.l2_hits") >= 5);

    // Fresh nonces: the instrument runs (new physics draw), but every
    // fabrication product is served from the memoized warm state.
    for nonce in 101..110 {
        verify(nonce);
    }
    assert_eq!(
        fabrication.iter().map(|n| counter(n)).collect::<Vec<_>>(),
        engine_after_cold,
        "warm-path verifies must perform zero engine runs / table builds"
    );
    assert!(
        counter("itdr.measurements") > measurements_after_cold,
        "fresh nonces must actually measure"
    );
}
