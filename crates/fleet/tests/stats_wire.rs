//! Wire-exposed fleet stats: `Request::Stats` answered inline by the
//! reactor, and streaming stats subscriptions.
//!
//! The operator contract: a live server answers a stats probe with
//! per-kind latency quantiles for every request kind it has served,
//! quantiles are ordered (p50 <= p90 <= p99), and a bounded stats
//! subscription delivers ack, frames in sequence order, then the end
//! marker — all without entering the worker queue.
//!
//! This test binary installs the process-global telemetry default; the
//! registry is process-wide, so all stats assertions live in one #[test]
//! to keep the counters' provenance unambiguous.

use std::time::Duration;

use divot_fleet::{
    FleetConfig, FleetService, FleetSimConfig, FleetTcpServer, PipelinedFleetClient, Request,
    Response, SimulatedFleet, WireEvent,
};
use divot_telemetry::Telemetry;

const SEED: u64 = 77;

#[test]
fn stats_probe_and_subscription_over_the_wire() {
    // First-call-wins; a pre-installed default is equally fine.
    let _ = divot_telemetry::install(Telemetry::new());

    let svc = FleetService::start(
        FleetConfig::default().with_workers(2),
        SimulatedFleet::new(FleetSimConfig::fast(3, SEED)),
    );
    let server = FleetTcpServer::spawn(svc.client(), "127.0.0.1:0").expect("bind");
    let mut client = PipelinedFleetClient::connect(server.local_addr()).expect("connect");

    // One pipelined round trip: send tagged, drain to the reply.
    fn roundtrip(client: &mut PipelinedFleetClient, request: &Request) -> Response {
        let id = client.send(request, None).expect("send");
        loop {
            if let WireEvent::Reply { id: got, outcome } = client.recv_event().expect("event") {
                if got == id {
                    return outcome.expect("request failed");
                }
            }
        }
    }

    // Serve at least one request of each kind the acceptance criteria
    // name: verify, enroll-batch, scan.
    let d0 = SimulatedFleet::device_name(0);
    let d1 = SimulatedFleet::device_name(1);
    let d2 = SimulatedFleet::device_name(2);
    roundtrip(
        &mut client,
        &Request::EnrollBatch {
            devices: vec![(d0.clone(), 1), (d1.clone(), 1), (d2.clone(), 1)],
        },
    );
    for nonce in 10..14u64 {
        let r = roundtrip(
            &mut client,
            &Request::Verify {
                device: d0.clone(),
                nonce,
            },
        );
        assert!(matches!(r, Response::Verdict { .. }));
    }
    roundtrip(
        &mut client,
        &Request::MonitorScan {
            device: d1.clone(),
            nonce: 99,
        },
    );

    // The stats probe itself.
    let stats = client.request_stats(None).expect("stats");
    assert!(
        stats.queue_capacity > 0,
        "capacity must reflect the admission queue"
    );
    for kind in ["verify", "enroll_batch", "scan"] {
        let name = format!("fleet.request.latency.{kind}");
        let (count, p50, p90, p99) = stats
            .histogram(&name)
            .unwrap_or_else(|| panic!("{name} missing from snapshot"));
        assert!(count > 0, "{name} served requests but reports count 0");
        assert!(
            p50 <= p90 && p90 <= p99,
            "{name} quantiles out of order: p50={p50} p90={p90} p99={p99}"
        );
    }
    assert!(
        stats.counter("fleet.verify.accepts").unwrap_or(0)
            + stats.counter("fleet.verify.rejects").unwrap_or(0)
            >= 4,
        "verify outcome counters must cover the burst"
    );
    // Queue timing flows into the snapshot too.
    let (wait_count, ..) = stats
        .histogram("fleet.queue.wait_ns")
        .expect("fleet.queue.wait_ns missing");
    assert!(wait_count > 0);

    // The probe is served inline on the reactor thread, not by a
    // worker: its latency histogram must not have grown. (try_cached
    // never fires for Stats, so any worker-side serving would count.)
    let before = stats
        .histogram("fleet.request.latency.stats")
        .map_or(0, |(c, ..)| c);
    let again = client.request_stats(None).expect("stats again");
    let after = again
        .histogram("fleet.request.latency.stats")
        .map_or(0, |(c, ..)| c);
    assert_eq!(
        before, after,
        "stats probes must bypass the worker pool (inline reactor path)"
    );
    assert!(
        again.counter("fleet.reactor.inline_stats").unwrap_or(0) >= 1,
        "inline stats counter must record the probe"
    );

    // Streaming stats: ack, frames in sequence order, end marker.
    let sub = client
        .subscribe_stats(Duration::from_millis(2), 3)
        .expect("subscribe");
    match client.recv_event().expect("ack") {
        WireEvent::SubAck { id, interval } => {
            assert_eq!(id, sub);
            assert_eq!(interval, Duration::from_millis(2));
        }
        other => panic!("expected ack, got {other:?}"),
    }
    for k in 0..3u64 {
        match client.recv_event().expect("frame") {
            WireEvent::StatsFrame { id, seq, outcome } => {
                assert_eq!(id, sub);
                assert_eq!(seq, k, "stats frames must arrive in sequence order");
                let Ok(Response::StatsSnapshot { stats }) = *outcome else {
                    panic!("expected a snapshot in frame {k}, got {outcome:?}");
                };
                assert!(stats.histogram("fleet.request.latency.verify").is_some());
            }
            other => panic!("expected stats frame {k}, got {other:?}"),
        }
    }
    match client.recv_event().expect("end") {
        WireEvent::SubEnd { id, frames } => {
            assert_eq!(id, sub);
            assert_eq!(frames, 3);
        }
        other => panic!("expected end, got {other:?}"),
    }

    // Unsubscribe path: an unbounded stats stream ends on request.
    let sub2 = client
        .subscribe_stats(Duration::from_millis(1), 0)
        .expect("subscribe unbounded");
    match client.recv_event().expect("ack") {
        WireEvent::SubAck { id, .. } => assert_eq!(id, sub2),
        other => panic!("expected ack, got {other:?}"),
    }
    let mut seen = 0u64;
    while seen < 2 {
        match client.recv_event().expect("frame") {
            WireEvent::StatsFrame { id, seq, .. } => {
                assert_eq!(id, sub2);
                assert_eq!(seq, seen);
                seen += 1;
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }
    client.unsubscribe(sub2).expect("unsubscribe");
    loop {
        match client.recv_event().expect("event") {
            WireEvent::StatsFrame { id, seq, .. } => {
                assert_eq!(id, sub2);
                assert_eq!(seq, seen);
                seen += 1;
            }
            WireEvent::SubEnd { id, frames } => {
                assert_eq!(id, sub2);
                assert!(frames >= 2);
                break;
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    drop(server);
    drop(svc);
}
