//! Reactor ⇄ threaded-server equivalence and pipelined determinism.
//!
//! The reactor is an *optimization*: for a v1 conversation its byte
//! stream must be identical to the thread-per-connection reference
//! server's, and pipelined verdicts must be bitwise stable across
//! worker counts (the fleet determinism contract lifted onto the
//! wire). A malformed connection must die alone.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use divot_fleet::wire::{encode_request, encode_response, read_frame, write_frame};
use divot_fleet::{
    FleetConfig, FleetError, FleetService, FleetSimConfig, FleetTcpServer, PipelinedFleetClient,
    Request, Response, SimulatedFleet, TcpFleetClient, WireEvent,
};

const SEED: u64 = 77;
const BUSES: usize = 4;

fn start_service(workers: usize) -> FleetService {
    // The cohort floor drops to the tiny test fleet so the v1 script
    // can exercise the population-model path over the wire too.
    let mut config = FleetConfig::default().with_workers(workers);
    config.cohort = divot_cohort::CohortConfig {
        min_cohort: BUSES,
        ..divot_cohort::CohortConfig::default()
    };
    FleetService::start(config, SimulatedFleet::new(FleetSimConfig::fast(BUSES, SEED)))
}

/// The v1 conversation both servers must answer byte-for-byte alike:
/// enrolls, verifies (one repeated — the cache inline path), a scan, a
/// snapshot, an unknown-device error, and a malformed payload.
fn v1_script() -> Vec<Vec<u8>> {
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for i in 0..BUSES {
        frames.push(encode_request(
            &Request::Enroll {
                device: SimulatedFleet::device_name(i),
                nonce: 1,
            },
            None,
        ));
    }
    for k in 0..8u64 {
        frames.push(encode_request(
            &Request::Verify {
                device: SimulatedFleet::device_name((k % BUSES as u64) as usize),
                nonce: 500 + k,
            },
            None,
        ));
    }
    // Warm repeat: the reactor answers this from the verdict cache
    // inline; the bytes must not differ from the threaded recompute.
    frames.push(encode_request(
        &Request::Verify {
            device: SimulatedFleet::device_name(0),
            nonce: 500,
        },
        None,
    ));
    frames.push(encode_request(
        &Request::MonitorScan {
            device: SimulatedFleet::device_name(1),
            nonce: 42,
        },
        None,
    ));
    frames.push(encode_request(&Request::RegistrySnapshot, None));
    frames.push(encode_request(
        &Request::Verify {
            device: "bus-404".into(),
            nonce: 7,
        },
        None,
    ));
    // Cohort path: a scan before any model is a typed error; enrolling
    // the whole fleet installs a model; an undersized re-enroll is
    // rejected without clobbering it; the scan then reports per-board
    // verdicts; an unknown device in a scan is a typed error.
    let cohort: Vec<(String, u64)> = (0..BUSES)
        .map(|i| (SimulatedFleet::device_name(i), 21))
        .collect();
    frames.push(encode_request(
        &Request::IntakeScan {
            devices: cohort.clone(),
        },
        None,
    ));
    frames.push(encode_request(
        &Request::CohortEnroll {
            devices: cohort.clone(),
        },
        None,
    ));
    frames.push(encode_request(
        &Request::CohortEnroll {
            devices: cohort[..1].to_vec(),
        },
        None,
    ));
    frames.push(encode_request(
        &Request::IntakeScan {
            devices: (0..BUSES)
                .map(|i| (SimulatedFleet::device_name(i), 900))
                .collect(),
        },
        None,
    ));
    frames.push(encode_request(
        &Request::IntakeScan {
            devices: vec![("bus-404".into(), 5)],
        },
        None,
    ));
    // Unknown wire version: a typed protocol error, connection lives.
    frames.push(vec![0x99, 0x01, 0x02]);
    frames.push(encode_request(&Request::RegistrySnapshot, None));
    frames
}

/// Run the script serially over one raw connection, returning every
/// response payload.
fn run_script(addr: std::net::SocketAddr, script: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut replies = Vec::with_capacity(script.len());
    for frame in script {
        write_frame(&mut stream, frame).expect("write");
        replies.push(read_frame(&mut stream).expect("read"));
    }
    replies
}

#[test]
fn reactor_and_threaded_servers_answer_v1_byte_identically() {
    // Twin services from the same seed; one behind each server flavor.
    let svc_a = start_service(2);
    let svc_b = start_service(2);
    let reactor = FleetTcpServer::spawn(svc_a.client(), "127.0.0.1:0").expect("bind");
    let threaded = FleetTcpServer::spawn_threaded(svc_b.client(), "127.0.0.1:0").expect("bind");

    let script = v1_script();
    let from_reactor = run_script(reactor.local_addr(), &script);
    let from_threaded = run_script(threaded.local_addr(), &script);

    assert_eq!(from_reactor.len(), from_threaded.len());
    for (i, (a, b)) in from_reactor.iter().zip(&from_threaded).enumerate() {
        assert_eq!(a, b, "response {i} diverged between reactor and threaded");
    }
    drop(reactor);
    drop(threaded);
}

#[test]
fn pipelined_verdicts_are_bitwise_identical_across_worker_counts() {
    // The same 64-deep pipelined batch — duplicates included, so the
    // reactor's coalescing path is on it — must produce byte-identical
    // outcomes whether 1, 2, or 8 workers race on it, and must match a
    // serial blocking client on a twin service.
    let requests: Vec<Request> = (0..64u64)
        .map(|k| Request::Verify {
            device: SimulatedFleet::device_name((k % BUSES as u64) as usize),
            // Every fourth request is a duplicate of the previous one:
            // concurrent identical verifies coalesce in the reactor.
            nonce: 3000 + (k - u64::from(k % 4 == 3)),
        })
        .collect();

    let mut per_worker_count: Vec<Vec<Vec<u8>>> = Vec::new();
    for workers in [1usize, 2, 8] {
        let svc = start_service(workers);
        let server = FleetTcpServer::spawn(svc.client(), "127.0.0.1:0").expect("bind");
        let mut ctl = TcpFleetClient::connect(server.local_addr()).expect("connect");
        for i in 0..BUSES {
            ctl.call(&Request::Enroll {
                device: SimulatedFleet::device_name(i),
                nonce: 1,
            })
            .expect("enroll");
        }
        let mut pipe = PipelinedFleetClient::connect(server.local_addr()).expect("connect");
        let batch: Vec<(Request, Option<Duration>)> =
            requests.iter().map(|r| (r.clone(), None)).collect();
        let ids = pipe.send_batch(&batch).expect("send batch");
        let mut replies: Vec<Option<Vec<u8>>> = vec![None; ids.len()];
        for _ in 0..ids.len() {
            match pipe.recv_event().expect("event") {
                WireEvent::Reply { id, outcome } => {
                    let slot = ids.iter().position(|&x| x == id).expect("known id");
                    assert!(replies[slot].is_none(), "duplicate reply for id {id}");
                    replies[slot] = Some(encode_response(&outcome));
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        per_worker_count.push(replies.into_iter().map(|r| r.expect("replied")).collect());
        drop(server);
        drop(svc);
    }
    let reference = &per_worker_count[0];
    for (w, got) in per_worker_count.iter().enumerate().skip(1) {
        for (i, (a, b)) in reference.iter().zip(got).enumerate() {
            assert_eq!(a, b, "request {i} diverged at worker-count index {w}");
        }
    }

    // Serial blocking reference on a twin service: same bits again.
    let svc = start_service(2);
    let server = FleetTcpServer::spawn(svc.client(), "127.0.0.1:0").expect("bind");
    let mut ctl = TcpFleetClient::connect(server.local_addr()).expect("connect");
    for i in 0..BUSES {
        ctl.call(&Request::Enroll {
            device: SimulatedFleet::device_name(i),
            nonce: 1,
        })
        .expect("enroll");
    }
    for (i, request) in requests.iter().enumerate() {
        let outcome = ctl.call(request);
        assert_eq!(
            encode_response(&outcome),
            reference[i],
            "blocking reference diverged at request {i}"
        );
    }
}

#[test]
fn garbage_kills_only_the_offending_connection() {
    let svc = start_service(2);
    let server = FleetTcpServer::spawn(svc.client(), "127.0.0.1:0").expect("bind");
    let mut good = TcpFleetClient::connect(server.local_addr()).expect("connect");
    good.call(&Request::Enroll {
        device: SimulatedFleet::device_name(0),
        nonce: 1,
    })
    .expect("enroll");

    // A connection announcing an impossible frame length gets a typed
    // error and a close...
    let mut evil = TcpStream::connect(server.local_addr()).expect("connect");
    evil.write_all(&u32::MAX.to_le_bytes()).expect("write");
    evil.flush().expect("flush");
    let reply = read_frame(&mut evil).expect("error frame before close");
    let err = divot_fleet::wire::decode_response(&reply).expect_err("typed error");
    assert!(matches!(err, FleetError::Protocol(_)), "{err:?}");
    let eof = read_frame(&mut evil);
    assert!(eof.is_err(), "oversized-length connection must be closed");

    // ...while the well-behaved connection keeps verifying.
    match good
        .call(&Request::Verify {
            device: SimulatedFleet::device_name(0),
            nonce: 9,
        })
        .expect("good connection survives")
    {
        Response::Verdict { accepted, .. } => assert!(accepted),
        other => panic!("unexpected {other:?}"),
    }
    drop(server);
}
