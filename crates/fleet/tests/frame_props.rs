//! Property pins for the incremental frame decoder and the v2 codec —
//! the robustness half of the reactor contract: however the kernel
//! slices the byte stream, and whatever bytes a client throws at the
//! server, the decoder reassembles exactly what was sent, rejects
//! oversized lengths with a typed error, and never panics.

use std::time::Duration;

use divot_fleet::wire::{
    decode_event, decode_wire_request, encode_request, encode_request_tagged, encode_scan_frame,
    encode_stats_frame, encode_stats_subscribe, encode_sub_ack, encode_sub_end, encode_subscribe,
    encode_tagged_response, encode_unsubscribe, FrameBuffer, MAX_FRAME,
};
use divot_cohort::Verdict;
use divot_fleet::{FleetError, FleetStats, IntakeReport, Request, Response, WireEvent, WireRequest};
use proptest::prelude::*;

/// Length-prefix a payload the way `write_frame` does.
fn framed(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Feed `wire` into a fresh `FrameBuffer` sliced at `cuts`, collecting
/// every decoded frame (and stopping at the first decode error).
fn decode_sliced(wire: &[u8], cuts: &[usize]) -> Result<Vec<Vec<u8>>, FleetError> {
    let mut buf = FrameBuffer::new();
    let mut frames = Vec::new();
    let mut fed = 0usize;
    let feed = |buf: &mut FrameBuffer, upto: usize, fed: &mut usize| {
        let upto = upto.min(wire.len()).max(*fed);
        buf.extend(&wire[*fed..upto]);
        *fed = upto;
    };
    let mut boundaries: Vec<usize> = cuts.to_vec();
    boundaries.push(wire.len());
    for upto in boundaries {
        feed(&mut buf, upto, &mut fed);
        while let Some(frame) = buf.next_frame()? {
            frames.push(frame);
        }
    }
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any frame sequence, split at arbitrary byte boundaries (including
    /// one-byte feeds and feeds straddling frame boundaries), decodes to
    /// exactly the payloads that were framed — same count, same bytes,
    /// same order.
    #[test]
    fn arbitrary_splits_reassemble_exactly(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300),
            1..8,
        ),
        cuts in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&framed(p));
        }
        let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (wire.len() + 1)).collect();
        cuts.sort_unstable();
        let frames = decode_sliced(&wire, &cuts).expect("well-formed stream");
        prop_assert_eq!(frames, payloads);
    }

    /// A length prefix beyond `MAX_FRAME` is rejected with the typed
    /// protocol error before any payload bytes arrive — the decoder
    /// never buffers toward an attacker-chosen length.
    #[test]
    fn oversized_lengths_are_rejected_eagerly(
        excess in 1u32..1024,
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = FrameBuffer::new();
        let len = MAX_FRAME as u32 + excess;
        buf.extend(&len.to_le_bytes());
        buf.extend(&junk);
        let err = loop {
            match buf.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("oversized length must not wait for bytes"),
                Err(e) => break e,
            }
        };
        prop_assert!(matches!(err, FleetError::Protocol(_)), "{err:?}");
    }

    /// Arbitrary garbage — fed in arbitrary slices — never panics the
    /// decoder stack: framing either yields frames or a typed error, and
    /// whatever frames come out, request/event decoding returns a typed
    /// result too.
    #[test]
    fn garbage_never_panics_the_decoder(
        garbage in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (garbage.len() + 1)).collect();
        cuts.sort_unstable();
        if let Ok(frames) = decode_sliced(&garbage, &cuts) {
            for frame in frames {
                let _ = decode_wire_request(&frame);
                let _ = decode_event(&frame);
            }
        }
    }

    /// v1 and v2 request frames round-trip the codec bit-exactly.
    #[test]
    fn wire_requests_round_trip(
        id in any::<u64>(),
        device_seed in any::<u64>(),
        nonce in any::<u64>(),
        deadline_ms in 0u32..100_000,
        interval_ms in 1u32..60_000,
        max_frames in any::<u32>(),
        kind in 0usize..8,
        rows in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..4),
    ) {
        let device = format!("bus-{device_seed:016x}");
        // 0 doubles as "no explicit deadline".
        let deadline =
            (deadline_ms > 0).then(|| Duration::from_millis(u64::from(deadline_ms)));
        // Kinds 4/5 exercise the stats tags, 6/7 the cohort tags; the
        // rest carry a Verify.
        let devices: Vec<(String, u64)> = rows
            .iter()
            .map(|(d, n)| (format!("bus-{d:016x}"), *n))
            .collect();
        let request = match kind {
            4 => Request::Stats,
            6 => Request::CohortEnroll { devices: devices.clone() },
            7 => Request::IntakeScan { devices: devices.clone() },
            _ => Request::Verify { device: device.clone(), nonce },
        };
        let (wire, expect) = match kind {
            0 => (
                encode_request(&request, deadline),
                WireRequest::Plain { request: request.clone(), deadline },
            ),
            1 => (
                encode_request_tagged(id, &request, deadline),
                WireRequest::Tagged { id, request: request.clone(), deadline },
            ),
            2 => (
                encode_subscribe(
                    id,
                    &device,
                    nonce,
                    Duration::from_millis(u64::from(interval_ms)),
                    max_frames,
                ),
                WireRequest::Subscribe {
                    id,
                    device: device.clone(),
                    base_nonce: nonce,
                    interval: Duration::from_millis(u64::from(interval_ms)),
                    max_frames,
                },
            ),
            3 => (
                encode_unsubscribe(id, nonce),
                WireRequest::Unsubscribe { id, target: nonce },
            ),
            4 => (
                encode_request_tagged(id, &request, deadline),
                WireRequest::Tagged { id, request: request.clone(), deadline },
            ),
            5 => (
                encode_stats_subscribe(
                    id,
                    Duration::from_millis(u64::from(interval_ms)),
                    max_frames,
                ),
                WireRequest::StatsSubscribe {
                    id,
                    interval: Duration::from_millis(u64::from(interval_ms)),
                    max_frames,
                },
            ),
            // 6/7: the cohort request tags, id-tagged like every
            // batch-friendly request.
            _ => (
                encode_request_tagged(id, &request, deadline),
                WireRequest::Tagged { id, request: request.clone(), deadline },
            ),
        };
        prop_assert_eq!(decode_wire_request(&wire).expect("decodes"), expect);
    }

    /// v2 server events round-trip the codec bit-exactly (including the
    /// f64 similarity bits inside a carried verdict).
    #[test]
    fn wire_events_round_trip(
        id in any::<u64>(),
        seq in any::<u64>(),
        device_seed in any::<u64>(),
        similarity in any::<f64>(),
        accepted in any::<bool>(),
        interval_ms in 1u32..60_000,
        kind in 0usize..7,
        depth in any::<u32>(),
        counter in any::<u64>(),
        gauge_bits in any::<u64>(),
        q_bits in proptest::collection::vec(any::<u64>(), 3),
    ) {
        let outcome: Result<Response, FleetError> = Ok(Response::Verdict {
            device: format!("bus-{device_seed:016x}"),
            accepted,
            similarity,
        });
        let (wire, expect) = match kind {
            0 => (
                encode_tagged_response(id, &outcome),
                WireEvent::Reply { id, outcome: Box::new(outcome.clone()) },
            ),
            1 => (
                encode_sub_ack(id, Duration::from_millis(u64::from(interval_ms))),
                WireEvent::SubAck {
                    id,
                    interval: Duration::from_millis(u64::from(interval_ms)),
                },
            ),
            2 => (
                encode_scan_frame(id, seq, &outcome),
                WireEvent::ScanFrame { id, seq, outcome: Box::new(outcome.clone()) },
            ),
            3 => (
                encode_sub_end(id, seq),
                WireEvent::SubEnd { id, frames: seq },
            ),
            5 => {
                // Cohort model summaries are all-integer, so plain
                // equality covers them.
                let outcome: Result<Response, FleetError> = Ok(Response::CohortModel {
                    cohort_size: depth,
                    excluded: depth.wrapping_add(interval_ms),
                    segments: interval_ms,
                });
                (
                    encode_tagged_response(id, &outcome),
                    WireEvent::Reply { id, outcome: Box::new(outcome.clone()) },
                )
            }
            6 => {
                // Intake reports carry three f64 evidence fields each;
                // arbitrary bit patterns (NaNs included) must survive
                // the wire, so compare by bits below.
                let report = |k: usize| IntakeReport {
                    device: format!("bus-{device_seed:016x}-{k}"),
                    verdict: Verdict::from_code((depth as u8).wrapping_add(k as u8) % 4)
                        .expect("codes 0..4 decode"),
                    score: f64::from_bits(q_bits[k % 3]),
                    similarity: f64::from_bits(q_bits[(k + 1) % 3]),
                    max_z: f64::from_bits(q_bits[(k + 2) % 3]),
                    deviant_segments: depth,
                    worst_segment: depth.wrapping_add(k as u32),
                };
                let outcome: Result<Response, FleetError> = Ok(Response::Intake {
                    reports: (0..(counter % 3) as usize).map(report).collect(),
                });
                let wire = encode_tagged_response(id, &outcome);
                let got = decode_event(&wire).expect("decodes");
                let WireEvent::Reply { id: gid, outcome: gout } = got else {
                    panic!("expected Reply, got {got:?}");
                };
                prop_assert_eq!(gid, id);
                let (Ok(Response::Intake { reports: sent }),
                     Ok(Response::Intake { reports: got })) = (&outcome, gout.as_ref())
                else {
                    panic!("expected Intake outcome");
                };
                prop_assert_eq!(got.len(), sent.len());
                for (g, s) in got.iter().zip(sent) {
                    prop_assert_eq!(&g.device, &s.device);
                    prop_assert_eq!(g.verdict, s.verdict);
                    prop_assert_eq!(g.score.to_bits(), s.score.to_bits());
                    prop_assert_eq!(g.similarity.to_bits(), s.similarity.to_bits());
                    prop_assert_eq!(g.max_z.to_bits(), s.max_z.to_bits());
                    prop_assert_eq!(g.deviant_segments, s.deviant_segments);
                    prop_assert_eq!(g.worst_segment, s.worst_segment);
                }
                return Ok(());
            }
            _ => {
                // Arbitrary f64 bit patterns (NaNs included) must
                // survive the stats codec; compared via PartialEq
                // below only when non-NaN, so pin the bits here too.
                let stats: Result<Response, FleetError> = Ok(Response::StatsSnapshot {
                    stats: FleetStats {
                        queue_depth: depth,
                        queue_capacity: depth.wrapping_add(1),
                        counters: vec![("fleet.test.counter".into(), counter)],
                        gauges: vec![("fleet.test.gauge".into(), f64::from_bits(gauge_bits))],
                        histograms: vec![(
                            "fleet.test.hist".into(),
                            counter,
                            f64::from_bits(q_bits[0]),
                            f64::from_bits(q_bits[1]),
                            f64::from_bits(q_bits[2]),
                        )],
                    },
                });
                let wire = encode_stats_frame(id, seq, &stats);
                let got = decode_event(&wire).expect("decodes");
                let WireEvent::StatsFrame { id: gid, seq: gseq, outcome: gout } = got else {
                    panic!("expected StatsFrame, got {got:?}");
                };
                prop_assert_eq!(gid, id);
                prop_assert_eq!(gseq, seq);
                let (Ok(Response::StatsSnapshot { stats: sent }),
                     Ok(Response::StatsSnapshot { stats: got })) = (&stats, gout.as_ref())
                else {
                    panic!("expected StatsSnapshot outcome");
                };
                prop_assert_eq!(got.queue_depth, sent.queue_depth);
                prop_assert_eq!(got.queue_capacity, sent.queue_capacity);
                prop_assert_eq!(&got.counters, &sent.counters);
                prop_assert_eq!(got.gauges.len(), sent.gauges.len());
                prop_assert_eq!(
                    got.gauges[0].1.to_bits(),
                    sent.gauges[0].1.to_bits()
                );
                prop_assert_eq!(got.histograms.len(), sent.histograms.len());
                let (ref gn, gc, g50, g90, g99) = got.histograms[0];
                let (ref sn, sc, s50, s90, s99) = sent.histograms[0];
                prop_assert_eq!(gn, sn);
                prop_assert_eq!(gc, sc);
                prop_assert_eq!(g50.to_bits(), s50.to_bits());
                prop_assert_eq!(g90.to_bits(), s90.to_bits());
                prop_assert_eq!(g99.to_bits(), s99.to_bits());
                return Ok(());
            }
        };
        let got = decode_event(&wire).expect("decodes");
        match (&got, &expect) {
            // Compare similarity by bits: NaN-carrying verdicts must
            // survive the wire too.
            (
                WireEvent::Reply { id: a, outcome: x },
                WireEvent::Reply { id: b, outcome: y },
            )
            | (
                WireEvent::ScanFrame { id: a, outcome: x, .. },
                WireEvent::ScanFrame { id: b, outcome: y, .. },
            ) => {
                prop_assert_eq!(a, b);
                match (x.as_ref(), y.as_ref()) {
                    (
                        Ok(Response::Verdict { similarity: sa, accepted: aa, device: da }),
                        Ok(Response::Verdict { similarity: sb, accepted: ab, device: db }),
                    ) => {
                        prop_assert_eq!(sa.to_bits(), sb.to_bits());
                        prop_assert_eq!(aa, ab);
                        prop_assert_eq!(da, db);
                    }
                    (
                        Ok(Response::CohortModel { .. }),
                        Ok(Response::CohortModel { .. }),
                    ) => prop_assert_eq!(x, y),
                    other => panic!("unexpected {other:?}"),
                }
            }
            _ => prop_assert_eq!(got, expect),
        }
    }
}
