# Development workflow for the DIVOT reproduction. Run `just` for the
# default full check — the same gates CI runs.

default: check

# Everything CI enforces, in CI's order.
check: build test doc clippy

build:
    cargo build --release --workspace

# Tier-1 (root package: integration lifecycles) then the full workspace.
test:
    cargo test -q
    cargo test --workspace -q

# Rustdoc must be warning-free (missing_docs is warn in every crate).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Criterion benchmarks, quick mode (itdr includes the cached-vs-resimulated
# enrollment comparison from EXPERIMENTS.md).
bench:
    cargo bench -p divot-bench --bench itdr -- --quick
    cargo bench -p divot-bench --bench scatter -- --quick
    cargo bench -p divot-bench --bench auth -- --quick

# Scattering-kernel benchmark with machine-readable output: writes
# BENCH_scatter.json (timings + speedup metrics) at the repo root.
bench-scatter:
    CRITERION_JSON="$(pwd)/BENCH_scatter.json" cargo bench -p divot-bench --bench scatter

# Acquisition benchmark with machine-readable output: writes
# BENCH_itdr.json (timings + the Trial-vs-Analytic speedup metrics at the
# paper-full 341×420 configuration) at the repo root.
bench-itdr:
    CRITERION_JSON="$(pwd)/BENCH_itdr.json" cargo bench -p divot-bench --bench itdr

# Fleet attestation smoke: enroll 8 buses, 64 concurrent verifies over
# loopback TCP, a 1-vs-8-worker scaling gate, then the cohort smoke (one
# 64-board EnrollBatch under the 4 ms/board amortized budget). Zero
# sheds, all-accept, bitwise-identical verdicts across worker counts,
# warm p50 < 2 ms, and speedup-not-inverted (on >=2 cores) are hard
# claims (nonzero exit on a MISS).
fleet-demo:
    cargo run --release -p divot-bench --bin fleet_load -- --quick

# Full fleet load benchmark: 64 buses, 16 concurrent clients, cold
# (first-touch fabrication) and warm (cached) phases at 1 and 8 workers,
# the overload/shedding phase, the 1000-board cohort intake, and the
# wire phases (reactor-vs-threaded, 10k connections, churn, fairness).
# Writes BENCH_fleet.json (per-phase throughput, p50/p99, speedups, shed
# rate, cohort and wire metrics) at the repo root.
bench-fleet:
    cargo run --release -p divot-bench --bin fleet_load

# Cohort cold path only: enroll a fresh 1000-board cohort through
# chunked EnrollBatch requests on one worker, against a solo-enroll
# baseline. Hard claim: amortized cold p50 <= 4 ms/board (algorithmic —
# asserted on any core count; the batch-vs-solo ratio is only asserted
# on >=2 cores). Writes BENCH_fleet.json with the fleet/cohort/* metrics.
bench-cohort:
    DIVOT_FLEET_PHASES=cohort cargo run --release -p divot-bench --bin fleet_load

# Golden-free intake scan: a 1024-board intake (counterfeit lots, wire
# taps, scars, probes, trojans seeded) attested against population
# models learned from cohorts of 32..512 boards — no per-device
# references anywhere. Hard claims: EER <= 5 % at cohort >= 256 for the
# counterfeit+tap pool, scan <= 4 ms/board. Writes BENCH_cohort.json
# (ROC/EER per cohort size, per-class AUCs) at the repo root.
bench-cohort-intake:
    cargo run --release -p divot-bench --bin cohort_intake

# Wire phases only: threaded-vs-reactor throughput at 1024 connections
# (>=5x claim), byte-equivalence probe, 10k-connection scaling (child
# driver), churn p99, and overload fairness. Writes BENCH_fleet.json with
# the fleet/wire/* metrics.
bench-wire:
    DIVOT_FLEET_PHASES=wire cargo run --release -p divot-bench --bin fleet_load

# Live fleet health monitor against a self-hosted demo fleet: starts a
# small fleet with a background load generator, subscribes to the stats
# stream over the wire, and renders 20 dashboard frames (rate, per-kind
# latency quantiles, cache tiers, shed reasons, queue/lock health).
# Point it at a real server instead with FLEET_TOP_ADDR=host:port
# (unbounded; FLEET_TOP_FRAMES/FLEET_TOP_INTERVAL_MS to tune).
fleet-top-demo:
    cargo run --release -p divot-bench --bin fleet_top

# Regenerate every paper figure/claim output into results/.
figures:
    for b in fig7_authentication fig8_temperature fig9_load_modification \
             fig9_wiretap fig9_magnetic_probe env_robustness \
             detection_latency resource_utilization spoof_resistance; do \
        cargo run --release -p divot-bench --bin $b; \
    done

# Telemetry demo: quick fig-7 run writing a JSONL event log and printing
# the metric registry at exit (signal catalog: ARCHITECTURE.md).
telemetry-demo:
    cargo run --release -p divot-bench --bin fig7_authentication -- \
        --quick --telemetry /tmp/divot-telemetry.jsonl --metrics-summary
    @echo "events: /tmp/divot-telemetry.jsonl"
