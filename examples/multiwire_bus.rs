//! Multi-wire authentication: fuse similarity scores across several lanes
//! of one bus (the paper's §IV-C future-work direction).
//!
//! A wide bus gives DIVOT one fingerprint per monitored lane; fusing the
//! per-lane scores multiplies the genuine/impostor separation, so even a
//! lane pair that happens to look similar across two boards cannot fool
//! the fused decision.
//!
//! Run: `cargo run --release --example multiwire_bus`

use divot::core::auth::{AuthPolicy, Authenticator};
use divot::prelude::*;

fn main() {
    // Two boards: ours and an attacker's pin-compatible clone.
    let ours = Board::fabricate(&BoardConfig::paper_prototype(), 1);
    let clone = Board::fabricate(&BoardConfig::paper_prototype(), 2);
    let itdr = Itdr::new(ItdrConfig::paper());
    let auth = Authenticator::new(AuthPolicy::default());
    let lanes = 4;

    // Enroll all four lanes of our bus.
    let mut our_channels: Vec<_> = (0..lanes)
        .map(|i| BusChannel::new(ours.line(i).clone(), FrontEndConfig::default(), 10 + i as u64))
        .collect();
    let fingerprints: Vec<Fingerprint> = our_channels
        .iter_mut()
        .map(|ch| itdr.enroll(ch, 8))
        .collect();

    // Genuine fused check.
    let genuine: Vec<_> = our_channels.iter_mut().map(|ch| itdr.measure(ch)).collect();
    let lanes_ref: Vec<_> = fingerprints.iter().zip(&genuine).collect();
    let decision = auth.verify_fused(&lanes_ref);
    println!(
        "genuine 4-lane bus: fused similarity {:.4} -> {}",
        decision.similarity(),
        if decision.is_accept() { "ACCEPT" } else { "REJECT" }
    );
    assert!(decision.is_accept());

    // Attacker substitutes the clone board (all four lanes).
    let mut clone_channels: Vec<_> = (0..lanes)
        .map(|i| BusChannel::new(clone.line(i).clone(), FrontEndConfig::default(), 20 + i as u64))
        .collect();
    let forged: Vec<_> = clone_channels.iter_mut().map(|ch| itdr.measure(ch)).collect();
    let per_lane: Vec<f64> = fingerprints
        .iter()
        .zip(&forged)
        .map(|(f, w)| auth.score(f, w))
        .collect();
    println!("clone per-lane similarities: {per_lane:?}");
    let lanes_ref: Vec<_> = fingerprints.iter().zip(&forged).collect();
    let decision = auth.verify_fused(&lanes_ref);
    println!(
        "cloned 4-lane bus: fused similarity {:.4} -> {}",
        decision.similarity(),
        if decision.is_accept() { "ACCEPT" } else { "REJECT" }
    );
    assert!(!decision.is_accept(), "the clone must be rejected");
    // Even if one lane happened to score above threshold, fusion drowns it.
    let best_lane = per_lane.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "best single clone lane scored {best_lane:.4}; fusion decided on {:.4}",
        decision.similarity()
    );
}
