//! Detect *and locate* physical tampers along a protected bus.
//!
//! Reproduces the paper's §IV-D/E/F countermeasures interactively: attach
//! a Trojan chip, a wire-tap, and a magnetic probe to a monitored line,
//! and watch the error function `E_xy` reveal each attack and its position
//! (round-trip echo time → distance).
//!
//! Run: `cargo run --release --example tamper_localization`

use divot::core::tamper::{TamperDetector, TamperPolicy};
use divot::prelude::*;
use divot::txline::attack::Attack;
use divot::txline::units::Meters;

fn main() {
    let board = Board::fabricate(&BoardConfig::paper_prototype(), 7);
    let line_length = board.line(0).profile.length();
    let mut bus = BusChannel::new(board.line(0).clone(), FrontEndConfig::default(), 7);
    let itdr = Itdr::new(ItdrConfig::paper());

    // Enroll and calibrate the tamper threshold against the clean noise
    // floor (averaged measurements keep the floor near the paper's 5e-7).
    let fingerprint = itdr.enroll(&mut bus, 16);
    let cleans: Vec<_> = (0..4)
        .map(|_| itdr.measure_averaged(&mut bus, 16))
        .collect();
    let detector = TamperDetector::calibrated(
        TamperPolicy::default(),
        fingerprint.iip(),
        &cleans,
        4.0,
    );
    println!(
        "calibrated threshold: {:.2e} V^2 (paper floor 5e-7)",
        detector.policy().threshold
    );

    let attacks: [(&str, Attack, Option<f64>); 3] = [
        (
            "trojan chip swap (cold boot)",
            Attack::trojan_chip(99),
            Some(line_length.0),
        ),
        ("wire-tap to oscilloscope", Attack::paper_wiretap(), Some(0.5 * line_length.0)),
        (
            "magnetic near-field probe",
            Attack::paper_magnetic_probe(),
            Some(0.7 * line_length.0),
        ),
    ];

    let clean_network = bus.network().clone();
    for (name, attack, true_location) in attacks {
        bus.apply_attack(&attack);
        let measured = itdr.measure_averaged(&mut bus, 16);
        let report = detector.scan(fingerprint.iip(), &measured);
        print!("{name}: ");
        if report.detected {
            let loc = report
                .location
                .unwrap_or(Meters(f64::NAN));
            print!(
                "DETECTED (peak E = {:.2e}, located at {:.1} cm",
                report.max_error,
                loc.0 * 100.0
            );
            if let Some(truth) = true_location {
                print!(", true position {:.1} cm", truth * 100.0);
            }
            println!(")");
        } else {
            println!("missed (max E = {:.2e})", report.max_error);
        }
        assert!(report.detected, "{name} must be detected");
        // Attacker removes the hardware; the bus returns to clean (the
        // wire-tap case would additionally leave a permanent scar — see
        // the fig9_wiretap experiment).
        bus.replace_network(clean_network.clone());
    }

    // A clean re-measurement stays quiet.
    let clean = itdr.measure_averaged(&mut bus, 16);
    let report = detector.scan(fingerprint.iip(), &clean);
    assert!(!report.detected, "clean bus must stay quiet");
    println!("clean bus: quiet (max E = {:.2e})", report.max_error);
}
