//! A miniature Fig. 7: measure a small board repeatedly and print the
//! genuine/impostor separation and ROC metrics.
//!
//! (The full-scale reproduction — 8,192 measurements over six lines — is
//! the `fig7_authentication` binary in `divot-bench`.)
//!
//! Run: `cargo run --release --example authentication_roc`

use divot::dsp::similarity::similarity;
use divot::dsp::stats::Summary;
use divot::prelude::*;

fn main() {
    let board = Board::fabricate(&BoardConfig::paper_prototype(), 11);
    let itdr = Itdr::new(ItdrConfig::paper());
    let per_line = 64;

    // Measure every line repeatedly.
    let mut measurements = Vec::new();
    for i in 0..board.line_count() {
        let mut ch = BusChannel::new(
            board.line(i).clone(),
            FrontEndConfig::default(),
            100 + i as u64,
        );
        measurements.push(
            (0..per_line)
                .map(|_| itdr.measure(&mut ch))
                .collect::<Vec<_>>(),
        );
    }

    // Genuine scores: consecutive measurements of the same line.
    let mut genuine = Vec::new();
    for per in &measurements {
        for pair in per.windows(2) {
            genuine.push(similarity(&pair[0], &pair[1]));
        }
    }
    // Impostor scores: same-index measurements of different lines.
    let mut impostor = Vec::new();
    for a in 0..measurements.len() {
        for b in a + 1..measurements.len() {
            for (wa, wb) in measurements[a].iter().zip(&measurements[b]).take(per_line) {
                impostor.push(similarity(wa, wb));
            }
        }
    }

    println!("genuine : {}", Summary::of(&genuine));
    println!("impostor: {}", Summary::of(&impostor));

    let roc = RocCurve::from_scores(&genuine, &impostor);
    println!("EER       : {:.4} %", roc.eer() * 100.0);
    println!("AUC       : {:.6}", roc.auc());
    println!("EER thresh: {:.4}", roc.eer_threshold());
    println!(
        "at the default policy threshold ({:.2}): FPR {:.5}, TPR {:.5}",
        AuthPolicy::default().threshold,
        roc.fpr_at(AuthPolicy::default().threshold),
        roc.tpr_at(AuthPolicy::default().threshold)
    );
    assert!(roc.auc() > 0.99, "lines must be clearly distinguishable");
}
