//! DIVOT beyond the memory bus: a protected serial I/O link (§VI).
//!
//! The link probes its IIP through its *own traffic* (§II-E falling-edge
//! triggers on the NRZ data) — no clock lane required. A wire-tap is
//! noticed within a bounded number of frames and the link drops; after
//! the attacker unplugs, the link recovers by itself.
//!
//! Run: `cargo run --release --example io_link_protection`

use divot::iolink::{LinkScenarioEvent, LinkSim, LinkSimConfig};
use divot::txline::attack::Attack;

fn main() {
    // Clean traffic: everything is delivered, nothing exposed.
    let clean = LinkSim::new(LinkSimConfig {
        frames: 512,
        seed: 2026,
        ..LinkSimConfig::default()
    })
    .run();
    println!(
        "clean link: {}/{} frames delivered, {} exposed",
        clean.delivered, clean.attempted, clean.exposed
    );
    assert_eq!(clean.delivered, 512);

    // An eavesdropper solders a tap at frame 200.
    let mut sim = LinkSim::new(LinkSimConfig {
        frames: 512,
        seed: 2026,
        ..LinkSimConfig::default()
    });
    sim.set_scenario(vec![
        LinkScenarioEvent::Attack {
            at_frame: 200,
            attack: Attack::paper_wiretap(),
        },
        LinkScenarioEvent::Restore { at_frame: 400 },
    ]);
    let stats = sim.run();
    println!(
        "tapped at frame 200: halted after {} frames; {} frames exposed; \
         {} sends refused during the halt",
        stats.detection_latency_frames().expect("must detect"),
        stats.exposed,
        stats.refused
    );
    println!(
        "attacker unplugged at frame 400: link recovered, {} of {} frames \
         delivered overall",
        stats.delivered, stats.attempted
    );
    assert!(stats.exposed < 130, "exposure must be bounded by polling");
    assert!(stats.delivered > stats.attempted / 2);
}
