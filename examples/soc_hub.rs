//! An SoC-scale deployment: one shared DIVOT datapath protecting several
//! buses, with pairings persisted across a reboot.
//!
//! Demonstrates the paper's scalability story — ">90 % of the hardware
//! can be shared by different iTDRs, protecting multiple buses in a
//! parallel fashion" — plus the §III EPROM persistence that makes
//! cold-boot protection survive power cycles.
//!
//! Run: `cargo run --release --example soc_hub`

use divot::core::hub::DivotHub;
use divot::core::registry::{FingerprintRegistry, Pairing};
use divot::core::trigger::TriggerSource;
use divot::prelude::*;
use divot::txline::attack::Attack;

fn main() {
    let board = Board::fabricate(&BoardConfig::paper_prototype(), 777);
    let lanes = 4;

    // One hub = one shared PLL + PDM generator + counter bank.
    let mut hub = DivotHub::new(Itdr::new(ItdrConfig::paper()), MonitorConfig::default());
    let mut channels: Vec<_> = (0..lanes)
        .map(|i| {
            hub.add_lane(format!("bus{i}"));
            BusChannel::new(board.line(i).clone(), FrontEndConfig::default(), 800 + i as u64)
        })
        .collect();

    hub.calibrate_all(&mut channels);
    println!("{hub}");
    let (regs, luts) = hub.resource_estimate();
    println!(
        "{lanes} buses protected with {regs} registers / {luts} LUTs \
         (one bus alone costs 71/124)"
    );
    println!(
        "full monitoring sweep: {:.0} µs on the 156.25 MHz clock lane",
        hub.sweep_time(TriggerSource::paper_prototype()) * 1e6
    );

    // Persist the pairings to the EPROM bank (per §III, no secrecy needed).
    let mut registry = FingerprintRegistry::new();
    for (id, name) in hub.lanes() {
        let fp = hub.lane_monitor(id).fingerprint().expect("calibrated").clone();
        registry.register(
            name.to_owned(),
            Pairing {
                master: fp.clone(),
                slave: fp,
            },
        );
    }
    let bank = registry.to_bank_bytes();
    println!("EPROM bank: {} pairings in {} bytes", registry.len(), bank.len());

    // --- reboot: reload the bank, monitors resume without re-enrollment --
    let restored = FingerprintRegistry::from_bank_bytes(&bank).expect("valid bank");
    let mut hub2 = DivotHub::new(Itdr::new(ItdrConfig::paper()), MonitorConfig::default());
    for i in 0..lanes {
        let id = hub2.add_lane(format!("bus{i}"));
        let pairing = restored.get(&format!("bus{i}")).expect("persisted");
        hub2.restore_lane(id, pairing.master.clone());
    }
    println!("reboot: {} lanes restored from EPROM, no re-calibration", lanes);
    let healthy = hub2.poll_all(&mut channels);
    assert!(healthy.iter().all(|(_, events)| events
        .iter()
        .any(|e| matches!(e, MonitorEvent::AuthOk { .. }))));
    println!("all lanes authenticate after reboot");

    // --- attack one lane: only it blocks, the SoC names it --------------
    channels[2].apply_attack(&Attack::paper_magnetic_probe());
    for _ in 0..4 {
        hub2.poll_all(&mut channels);
        if hub2.any_blocking() {
            break;
        }
    }
    let blocked = hub2.blocking_lanes();
    assert_eq!(blocked.len(), 1);
    println!(
        "magnetic probe detected on {} — other {} lanes keep running",
        hub2.lane_name(blocked[0]),
        lanes - 1
    );
}
