//! The §III example design end-to-end: a DDR-lite memory system protected
//! by DIVOT iTDRs on both ends of the bus, surviving a cold-boot attack.
//!
//! Scenario: a server runs a memory workload; at cycle 60,000 an attacker
//! yanks the DIMM and mounts it on their own rig (cold boot). The module-
//! side iTDR notices the foreign bus fingerprint at its next poll and
//! closes the column-access gate — the attacker's reads return nothing.
//!
//! Run: `cargo run --release --example memory_bus_protection`

use divot::membus::protect::{ProtectionConfig, ScenarioEvent};
use divot::membus::sim::{SimConfig, Simulation};
use divot::membus::workload::{AccessPattern, WorkloadConfig};

fn main() {
    let cycles = 160_000;
    let base = SimConfig {
        workload: WorkloadConfig {
            pattern: AccessPattern::Random,
            intensity: 0.05,
            ..WorkloadConfig::default()
        },
        protection: ProtectionConfig {
            poll_interval: 10_000,
            ..ProtectionConfig::default()
        },
        cycles,
        seed: 2026,
        ..SimConfig::default()
    };

    // --- Normal operation: protection is free ---------------------------
    let protected = Simulation::new(base).run();
    let mut unprotected_cfg = base;
    unprotected_cfg.protection.enabled = false;
    let unprotected = Simulation::new(unprotected_cfg).run();
    println!("clean bus, {cycles} cycles:");
    println!(
        "  protected:   {:.1} req/kcycle, mean latency {:.1} cycles",
        protected.throughput_per_kilocycle, protected.mean_latency
    );
    println!(
        "  unprotected: {:.1} req/kcycle, mean latency {:.1} cycles",
        unprotected.throughput_per_kilocycle, unprotected.mean_latency
    );
    assert!(
        (protected.throughput_per_kilocycle - unprotected.throughput_per_kilocycle).abs()
            < 0.01 * unprotected.throughput_per_kilocycle,
        "DIVOT monitoring must not cost throughput"
    );

    // --- Cold boot attack ------------------------------------------------
    // The attacker's CPU runs no DIVOT logic, so only the module's own
    // gate defends the data.
    let mut cfg = base;
    cfg.protection.cpu_side = false;
    let mut sim = Simulation::new(cfg);
    sim.set_scenario(vec![ScenarioEvent::ColdBootSwap {
        at_cycle: 60_000,
        foreign_seed: 666,
    }]);
    let stats = sim.run();
    println!("\ncold boot at cycle 60000 (attacker-controlled CPU):");
    println!(
        "  detected after {} cycles",
        stats.detection_latency.expect("must detect")
    );
    println!(
        "  accesses served in the attacker's window: {}",
        stats.leaked_accesses
    );
    println!(
        "  accesses blocked by the column gate:      {}",
        stats.blocked_accesses
    );
    assert!(stats.blocked_accesses > 0, "the gate must close");

    // The same attack against an unprotected module leaks forever.
    let mut naked = base;
    naked.protection.enabled = false;
    let mut sim = Simulation::new(naked);
    sim.set_scenario(vec![ScenarioEvent::ColdBootSwap {
        at_cycle: 60_000,
        foreign_seed: 666,
    }]);
    let naked_stats = sim.run();
    println!(
        "\nunprotected module under the same attack: {} accesses leaked, never detected",
        naked_stats.leaked_accesses
    );
    assert!(naked_stats.leaked_accesses > 10 * stats.leaked_accesses.max(1));
}
