//! Quickstart: enroll a bus fingerprint and authenticate it at runtime.
//!
//! This walks the paper's three operational phases (§III) on a single
//! simulated Tx-line:
//!
//! 1. **calibration** — the iTDR enrolls the line's IIP into an "EPROM";
//! 2. **monitoring** — runtime measurements are compared to the stored
//!    fingerprint;
//! 3. **reaction** — a foreign line (the impostor) is rejected.
//!
//! Run: `cargo run --release --example quickstart`

use divot::prelude::*;
use divot::core::fingerprint::Fingerprint;

fn main() {
    // Fabricate the paper's six-line prototype board. Line 0 is "our" bus;
    // line 1 plays the impostor.
    let board = Board::fabricate(&BoardConfig::paper_prototype(), 42);
    let mut bus = BusChannel::new(board.line(0).clone(), FrontEndConfig::default(), 42);
    let mut impostor = BusChannel::new(board.line(1).clone(), FrontEndConfig::default(), 43);

    // The instrument: the paper configuration takes ~46 µs of bus time per
    // measurement on the 156.25 MHz clock lane.
    let itdr = Itdr::new(ItdrConfig::paper());

    // --- Calibration -----------------------------------------------------
    let fingerprint = itdr.enroll(&mut bus, 16);
    println!(
        "enrolled fingerprint: {} points, {} measurements averaged",
        fingerprint.iip().len(),
        fingerprint.enrollment_count()
    );

    // The fingerprint would live in a local EPROM; round-trip the codec.
    let eprom_image = fingerprint.to_eprom_bytes();
    println!("EPROM image: {} bytes", eprom_image.len());
    let restored = Fingerprint::from_eprom_bytes(&eprom_image).expect("valid image");

    // --- Monitoring ------------------------------------------------------
    let auth = Authenticator::new(AuthPolicy::default());
    let genuine_iip = itdr.measure(&mut bus);
    let decision = auth.verify(&restored, &genuine_iip);
    println!(
        "genuine bus:   similarity {:.4} -> {}",
        decision.similarity(),
        if decision.is_accept() { "ACCEPT" } else { "REJECT" }
    );
    assert!(decision.is_accept(), "the genuine bus must authenticate");

    // --- Reaction --------------------------------------------------------
    // An attacker substitutes different hardware (a different physical
    // line): the fingerprint cannot follow, because the IIP lives in the
    // copper, not in any stored secret.
    let impostor_iip = itdr.measure(&mut impostor);
    let decision = auth.verify(&restored, &impostor_iip);
    println!(
        "impostor bus:  similarity {:.4} -> {}",
        decision.similarity(),
        if decision.is_accept() { "ACCEPT" } else { "REJECT" }
    );
    assert!(!decision.is_accept(), "the impostor must be rejected");

    println!("quickstart OK");
}
